//! The simulated kernel: `mmap()` color protocol, page faults, Algorithm 1.
//!
//! ## The `mmap()` protocol (paper §III.B, Fig. 6)
//!
//! A **zero-length** `mmap()` whose protection argument has bit 30
//! ([`COLOR_ALLOC`]) set is interpreted as a color-set operation: the
//! address argument carries a mode in its most significant bits and the
//! color in its low bits:
//!
//! ```text
//! char *A = (char*) mmap(c | SET_LLC_COLOR, 0, prot | COLOR_ALLOC, ...);
//! ```
//!
//! The color is recorded in the calling task's TCB together with the
//! `using_bank`/`using_llc` flags; subsequent ordinary heap allocations are
//! colored without any further source change.
//!
//! ## Algorithm 1 (colored page selection)
//!
//! Order-0 requests from a task with a coloring flag set are served from
//! `color_list[MEM_ID][LLC_ID]`. When the matching lists are empty, the
//! kernel walks the buddy free lists from low order to `MAX_ORDER`, finds a
//! block *containing a page of a matching color*, and moves it into the
//! color matrix with `create_color_list` (Algorithm 2) — then retries. When
//! no such block exists the allocation fails with `ENOMEM` ("no more page of
//! this color"). Orders greater than zero and uncolored tasks go straight to
//! the legacy buddy allocator.

use crate::buddy::BuddyAllocator;
use crate::colorlist::ColorMatrix;
use crate::errno::Errno;
use crate::fault::{FaultInjector, FaultPlan, FaultSite};
use crate::pressure::{AuditCursor, MemPressure, OomKill, VictimPolicy, Watermarks};
use crate::task::{ColorOp, ExhaustionPolicy, HeapPolicy, TaskStruct, Tid, VmId};
use crate::vm::{AddressSpace, FrameSource};
use crate::MAX_ORDER;
use std::collections::HashMap;
use tint_hw::addrmap::AddressMapping;
use tint_hw::pci::{derive_mapping, PciConfigSpace};
use tint_hw::topology::Topology;
use tint_hw::types::{
    BankColor, CoreId, FrameNumber, LlcColor, PageNumber, PhysAddr, VirtAddr, PAGE_SIZE,
};

/// Protection-argument flag (bit 30): "interpret this `mmap()` as a color
/// operation" (paper Fig. 6).
pub const COLOR_ALLOC: u64 = 1 << 30;

/// Mode nibble (bits 60–63 of the address argument): add a memory color.
pub const SET_MEM_COLOR: u64 = 1 << 60;
/// Mode nibble: add an LLC color.
pub const SET_LLC_COLOR: u64 = 2 << 60;
/// Mode nibble: clear all memory colors.
pub const CLEAR_MEM_COLOR: u64 = 3 << 60;
/// Mode nibble: clear all LLC colors.
pub const CLEAR_LLC_COLOR: u64 = 4 << 60;

const MODE_SHIFT: u32 = 60;
const COLOR_MASK: u64 = (1 << MODE_SHIFT) - 1;

/// Cycle costs charged to a faulting task for kernel work. These surface in
/// thread runtimes: the paper notes the overhead of colored allocation "is
/// higher for the first heap requests as the kernel traverses the general
/// buddy free list" (§III.C) — `block_scan`/`per_page_move` is that cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCosts {
    /// Base cost of any page fault (trap, zeroing, page-table update).
    pub page_fault: u64,
    /// Cost per buddy block *examined* while locating a block for
    /// `create_color_list` — restrictive color sets scan further, which is
    /// the paper's "traverses the general buddy free list" overhead.
    pub block_scan: u64,
    /// Per-page cost of moving pages into the color matrix.
    pub per_page_move: u64,
    /// Cost of copying one page during migration (recoloring).
    pub page_copy: u64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            page_fault: 1500,
            block_scan: 150,
            per_page_move: 4,
            page_copy: 800,
        }
    }
}

/// Allocation-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Order-0 pages served by the legacy buddy path.
    pub legacy_allocs: u64,
    /// Pages served from the color matrix.
    pub colored_allocs: u64,
    /// Pages served by the first-touch local-node preference.
    pub firsttouch_allocs: u64,
    /// First-touch pages that fell back to the global list (remote).
    pub fallback_allocs: u64,
    /// Algorithm 2 invocations.
    pub create_color_list_calls: u64,
    /// Pages moved from buddy lists into the color matrix.
    pub pages_moved: u64,
    /// Page faults served.
    pub page_faults: u64,
    /// Colored allocations that failed (no page of the color left).
    pub color_enomem: u64,
    /// Pages migrated by [`Kernel::recolor_task`].
    pub pages_migrated: u64,
    /// Total fault cycles charged to tasks.
    pub fault_cycles: u64,
    /// Colored allocations served from a *borrowed* bank/LLC color under
    /// [`ExhaustionPolicy::NearestColor`].
    pub off_color_allocs: u64,
    /// Colored allocations served uncolored under
    /// [`ExhaustionPolicy::LocalUncolored`].
    pub exhaustion_fallbacks: u64,
    /// Faults injected by the armed [`FaultPlan`] (0 when injection is off).
    pub injected_faults: u64,
    /// Tasks destroyed by [`Kernel::oom_kill`].
    pub oom_kills: u64,
    /// Admissions deferred or dropped by a scheduler's watermark gate
    /// (reported via [`Kernel::note_admission_reject`]).
    pub admission_rejects: u64,
    /// Allocation attempts retried after a transient `EAGAIN` (reported via
    /// [`Kernel::note_alloc_retry`]).
    pub alloc_retries: u64,
}

/// What a page fault returned: the frame plus the cycles the kernel charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocOutcome {
    /// The frame that now backs the page.
    pub frame: FrameNumber,
    /// Kernel cycles charged to the faulting task.
    pub cycles: u64,
    /// Pool the frame was taken from — recorded in the PTE so reclamation
    /// routes by where the frame *came from*, not by the task's current
    /// coloring flags (which may have changed, or never matched: an
    /// exhaustion fallback serves buddy pages to colored tasks).
    pub source: FrameSource,
}

/// Result of an address translation that may have faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub phys: PhysAddr,
    /// Fault cost if this access took a page fault (first touch).
    pub fault_cycles: u64,
}

/// The simulated kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    mapping: AddressMapping,
    topology: Topology,
    buddy: BuddyAllocator,
    colors: ColorMatrix,
    tasks: HashMap<Tid, TaskStruct>,
    /// Address spaces; threads created with [`Kernel::create_thread`] share
    /// their group leader's entry (CLONE_VM).
    vms: Vec<AddressSpace>,
    next_tid: u64,
    costs: KernelCosts,
    stats: KernelStats,
    /// Bumped whenever an existing virtual→physical translation is destroyed
    /// or changed (`munmap`, recolor migration). Software TLBs above the
    /// kernel ([`tintmalloc::System`]) compare this against their snapshot
    /// and flush on mismatch — installing a *new* translation never bumps it,
    /// so fault-heavy phases keep their TLB warm.
    translation_epoch: u64,
    /// Armed fault-injection state; `None` (the default) costs one branch
    /// per injection site and keeps behaviour bit-identical to a kernel
    /// without the feature.
    fault: Option<FaultInjector>,
    /// Frames allocated but deliberately not tracked by any structure the
    /// invariant checker walks: boot-noise pages (permanently consumed) and
    /// outstanding [`Kernel::alloc_pages_raw`] blocks. Balances the
    /// whole-memory accounting in [`Kernel::check_invariants`].
    untracked_pages: u64,
    /// Free-frame watermarks backing [`Kernel::mem_pressure`].
    watermarks: Watermarks,
    /// Reverse map: frame number → packed `(vm, page)` of the translation
    /// it backs, or [`RMAP_NONE`]. Maintained on every install/remap/
    /// release, it gives [`Kernel::audit_step`] an O(1) "who owns this
    /// frame" answer — genuine redundancy against the page tables, which is
    /// what makes the incremental audit able to *catch* drift rather than
    /// re-derive it.
    rmap: Vec<u64>,
    /// Pages currently resident across all address spaces (PTE count).
    /// Redundant with walking every VM; kept incrementally so the auditor's
    /// whole-memory conservation check is O(tasks), not O(frames).
    resident_pages: u64,
}

/// [`Kernel::rmap`] sentinel: the frame backs no translation.
const RMAP_NONE: u64 = u64::MAX;

/// Bits of the packed rmap entry reserved for the page number.
const RMAP_PAGE_BITS: u32 = 44;

impl Kernel {
    /// Boot with a known mapping (tests, presets).
    pub fn new(mapping: AddressMapping, topology: Topology, costs: KernelCosts) -> Self {
        assert_eq!(
            mapping.node_count(),
            topology.node_count(),
            "mapping and topology disagree on node count"
        );
        Self {
            buddy: BuddyAllocator::new(mapping.frame_count()),
            colors: ColorMatrix::new(mapping),
            tasks: HashMap::new(),
            vms: Vec::new(),
            next_tid: 1,
            topology,
            costs,
            stats: KernelStats::default(),
            translation_epoch: 0,
            fault: None,
            untracked_pages: 0,
            watermarks: Watermarks::for_frames(mapping.frame_count()),
            rmap: vec![RMAP_NONE; mapping.frame_count() as usize],
            resident_pages: 0,
            mapping,
        }
    }

    /// Boot the way the paper does (§III.A): derive the mapping from the
    /// PCI configuration space "in the late phase of booting Linux".
    pub fn boot_from_pci(
        pci: &PciConfigSpace,
        topology: Topology,
        costs: KernelCosts,
    ) -> Result<Self, tint_hw::pci::PciError> {
        Ok(Self::new(derive_mapping(pci)?, topology, costs))
    }

    /// The address mapping in force.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Allocation-path counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The buddy allocator (inspection).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// The color matrix (inspection).
    pub fn color_lists(&self) -> &ColorMatrix {
        &self.colors
    }

    /// An address space (inspection).
    pub fn vm(&self, id: VmId) -> &AddressSpace {
        &self.vms[id.0]
    }

    /// Current translation epoch. Any cached virtual→physical translation
    /// obtained at an older epoch may be stale and must be dropped.
    pub fn translation_epoch(&self) -> u64 {
        self.translation_epoch
    }

    /// Simulate pre-existing system activity: permanently consume `pages`
    /// order-0 pages from the buddy allocator. Gives the "10 repetitions"
    /// of the paper's experiments distinct physical layouts per seed.
    pub fn consume_boot_noise(&mut self, pages: u64) {
        for _ in 0..pages {
            if self.buddy.alloc(0).is_some() {
                self.untracked_pages += 1;
            }
        }
    }

    /// Arm (or with `None` disarm) deterministic fault injection. With no
    /// plan armed every injection site is a single never-taken branch.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(FaultInjector::new);
    }

    /// The armed fault injector, if any (per-site injection counters).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Should the operation at `site` fail now? One branch when no plan is
    /// armed.
    #[inline]
    fn inject(fault: &mut Option<FaultInjector>, stats: &mut KernelStats, site: FaultSite) -> bool {
        let Some(inj) = fault else { return false };
        if inj.should_fail(site) {
            stats.injected_faults += 1;
            true
        } else {
            false
        }
    }

    /// Whole-kernel consistency check (for tests and the fuzzer; O(frames),
    /// never called on hot paths). Panics with a description on violation.
    ///
    /// Verified invariants:
    /// * the buddy allocator's and color matrix's own structural invariants;
    /// * every physical frame is owned by **exactly one** of: a buddy free
    ///   list, a color list, a page table, or a task's pcp batch;
    /// * every resident page lies inside a VMA of its address space;
    /// * the frames owned by none of those structures are exactly the
    ///   untracked pool (boot noise + outstanding raw blocks).
    pub fn check_invariants(&self) {
        self.buddy.check_invariants();
        self.colors.check_invariants();
        let mut owner = vec![0u8; self.mapping.frame_count() as usize];
        let mut claim = |f: FrameNumber, code: u8, what: &str| {
            let slot = &mut owner[f.0 as usize];
            assert_eq!(*slot, 0, "frame {f} claimed twice (now {what})");
            *slot = code;
        };
        for order in 0..=MAX_ORDER {
            for start in self.buddy.blocks(order) {
                for i in 0..1u64 << order {
                    claim(FrameNumber(start.0 + i), 1, "buddy free list");
                }
            }
        }
        for f in self.colors.iter_frames() {
            claim(f, 2, "color list");
        }
        for vm in &self.vms {
            for (p, f) in vm.resident() {
                assert!(
                    vm.vma_of(p).is_some(),
                    "resident page {p:?} outside any VMA"
                );
                claim(f, 3, "page table");
            }
        }
        for t in self.tasks.values() {
            for &f in &t.pcp {
                claim(f, 4, "pcp batch");
            }
        }
        let claimed = owner.iter().filter(|&&c| c != 0).count() as u64;
        assert_eq!(
            claimed + self.untracked_pages,
            self.mapping.frame_count(),
            "frame accounting drifted (untracked: {})",
            self.untracked_pages
        );
        // The reverse map must agree with the page tables exactly: an rmap
        // entry on every page-table-owned frame (pointing back at a live
        // PTE for that frame) and on nothing else, with the resident-page
        // counter matching the population.
        let mut rmapped = 0u64;
        for (fno, &entry) in self.rmap.iter().enumerate() {
            if entry == RMAP_NONE {
                assert_ne!(
                    owner[fno], 3,
                    "frame {fno} is page-table-owned but has no rmap entry"
                );
                continue;
            }
            rmapped += 1;
            assert_eq!(
                owner[fno], 3,
                "frame {fno} rmapped but not page-table-owned"
            );
            let (vm, page) = Self::rmap_unpack(entry);
            assert_eq!(
                self.vms[vm].pte(PageNumber(page)).map(|p| p.frame),
                Some(FrameNumber(fno as u64)),
                "rmap of frame {fno} points at vm {vm} page {page}, which maps elsewhere"
            );
        }
        assert_eq!(
            rmapped, self.resident_pages,
            "resident-page counter drifted from the rmap population"
        );
        // Post-exit baseline: once every task is gone there is nothing to
        // hold pages — the color matrix must have drained and the buddy
        // allocator must own every tracked frame again (zero leaked frames,
        // zero pool skew, regardless of the churn that came before).
        if self.tasks.is_empty() {
            assert_eq!(
                self.colors.pages(),
                0,
                "no tasks left but the color matrix still parks pages"
            );
            assert_eq!(
                self.buddy.free_pages() + self.untracked_pages,
                self.mapping.frame_count(),
                "post-exit buddy population below the post-boot baseline"
            );
        }
    }

    /// Free-pool populations, `(buddy_free_pages, color_list_pages)` — the
    /// snapshot churn harnesses compare before/after task lifecycles.
    pub fn pool_snapshot(&self) -> (u64, u64) {
        (self.buddy.free_pages(), self.colors.pages())
    }

    // ------------------------------------------------------------------
    // Memory pressure
    // ------------------------------------------------------------------

    /// The watermarks in force.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Replace the watermarks (harness knobs; defaults come from
    /// [`Watermarks::for_frames`] at boot).
    pub fn set_watermarks(&mut self, w: Watermarks) {
        assert!(w.min <= w.low, "min watermark above low watermark");
        self.watermarks = w;
    }

    /// Total allocatable frames: buddy free pages plus pages parked in the
    /// color lists.
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_pages() + self.colors.pages()
    }

    /// The current pressure signal, from [`Kernel::free_frames`] against
    /// the watermarks. O(1).
    pub fn mem_pressure(&self) -> MemPressure {
        let free = self.free_frames();
        if free <= self.watermarks.min {
            MemPressure::Critical
        } else if free <= self.watermarks.low {
            MemPressure::Low
        } else {
            MemPressure::Normal
        }
    }

    /// Live task count (OOM candidates).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The OOM killer: pick a victim under `policy` (deterministic — equal
    /// kernel states pick equal victims), destroy it through the ordinary
    /// provenance-routed [`Kernel::destroy_task`] path, and report what was
    /// reclaimed. `ESRCH` when no task is left to kill.
    pub fn oom_kill(&mut self, policy: VictimPolicy) -> Result<OomKill, Errno> {
        let victim = match policy {
            VictimPolicy::LargestFootprint => self
                .tasks
                .values()
                .map(|t| {
                    let footprint = self.vms[t.vm.0].resident_pages() as u64 + t.pcp.len() as u64;
                    (footprint, t.tid.0)
                })
                // Ties by *youngest* (largest tid): kill the newcomer.
                .max()
                .map(|(_, tid)| Tid(tid)),
            VictimPolicy::Youngest => self.tasks.keys().max().copied(),
        }
        .ok_or(Errno::Esrch)?;
        let before = self.free_frames();
        self.destroy_task(victim)?;
        self.stats.oom_kills += 1;
        Ok(OomKill {
            victim,
            frames_reclaimed: self.free_frames() - before,
        })
    }

    /// Record that a scheduler deferred or dropped an admission because of
    /// memory pressure. The gate lives in the scheduler (it owns arrival
    /// time); the counter lives here so every harness shares one ledger.
    pub fn note_admission_reject(&mut self) {
        self.stats.admission_rejects += 1;
    }

    /// Record that a caller retried an allocation after a transient
    /// `EAGAIN`.
    pub fn note_alloc_retry(&mut self) {
        self.stats.alloc_retries += 1;
    }

    /// One bounded slice of the invariant audit: examine up to `frames`
    /// physical frames starting at `cursor`, plus an O(tasks) whole-memory
    /// conservation check. Returns the number of frames examined and
    /// advances (wrapping) the cursor, so a scheduler can keep auditing
    /// *continuously* during simulated-hours runs at a bounded per-quantum
    /// cost instead of stop-the-world [`Kernel::check_invariants`] sweeps.
    ///
    /// Per frame, exactly one of these may own it: a buddy free list, a
    /// color list, a translation (checked *both ways* through the reverse
    /// map and the page table it claims), or a task's pcp batch. Panics
    /// with a description on any violation.
    pub fn audit_step(&self, cursor: &mut AuditCursor, frames: u64) -> u64 {
        let total = self.mapping.frame_count();
        // Conservation first: every frame is free, resident, batched, or
        // deliberately untracked. O(tasks).
        let pcp_total: u64 = self.tasks.values().map(|t| t.pcp.len() as u64).sum();
        assert_eq!(
            self.buddy.free_pages()
                + self.colors.pages()
                + self.resident_pages
                + pcp_total
                + self.untracked_pages,
            total,
            "frame conservation drifted (free {} + colors {} + resident {} + pcp {} + untracked {})",
            self.buddy.free_pages(),
            self.colors.pages(),
            self.resident_pages,
            pcp_total,
            self.untracked_pages
        );
        let budget = frames.min(total);
        let pcp: std::collections::HashSet<u64> = self
            .tasks
            .values()
            .flat_map(|t| t.pcp.iter().map(|f| f.0))
            .collect();
        for i in 0..budget {
            let fno = (cursor.next + i) % total;
            let f = FrameNumber(fno);
            let mut owners = 0u32;
            if self.buddy.contains_frame(f) {
                owners += 1;
            }
            if self.colors.contains_frame(f) {
                owners += 1;
            }
            if pcp.contains(&fno) {
                owners += 1;
            }
            let entry = self.rmap[fno as usize];
            if entry != RMAP_NONE {
                owners += 1;
                let (vm, page) = Self::rmap_unpack(entry);
                let pte = self.vms[vm].pte(PageNumber(page));
                assert_eq!(
                    pte.map(|p| p.frame),
                    Some(f),
                    "audit: rmap says frame {f} backs vm {vm} page {page}, page table disagrees"
                );
            }
            assert!(owners <= 1, "audit: frame {f} claimed by {owners} owners");
        }
        cursor.next = (cursor.next + budget) % total;
        budget
    }

    /// Pack an rmap entry.
    fn rmap_pack(vm: usize, page: u64) -> u64 {
        assert!(page < 1 << RMAP_PAGE_BITS, "page number beyond rmap range");
        assert!(
            (vm as u64) < (1 << (64 - RMAP_PAGE_BITS)) - 1,
            "vm index beyond rmap range"
        );
        ((vm as u64) << RMAP_PAGE_BITS) | page
    }

    /// Unpack an rmap entry into `(vm index, page number)`.
    fn rmap_unpack(entry: u64) -> (usize, u64) {
        (
            (entry >> RMAP_PAGE_BITS) as usize,
            entry & ((1 << RMAP_PAGE_BITS) - 1),
        )
    }

    /// Record that `frame` now backs `page` of `vm`.
    fn rmap_set(&mut self, frame: FrameNumber, vm: usize, page: u64) {
        let slot = &mut self.rmap[frame.0 as usize];
        debug_assert_eq!(*slot, RMAP_NONE, "frame {frame} rmapped twice");
        *slot = Self::rmap_pack(vm, page);
    }

    /// Record that `frame` no longer backs any translation.
    fn rmap_clear(&mut self, frame: FrameNumber) {
        debug_assert_ne!(
            self.rmap[frame.0 as usize], RMAP_NONE,
            "frame {frame} rmap-cleared while unmapped"
        );
        self.rmap[frame.0 as usize] = RMAP_NONE;
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /// Create a task pinned to `core` with a fresh address space (a new
    /// process / OpenMP group leader).
    pub fn create_task(&mut self, core: CoreId) -> Tid {
        assert!(core.index() < self.topology.core_count(), "no such core");
        let vm = VmId(self.vms.len());
        self.vms.push(AddressSpace::new());
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.tasks.insert(tid, TaskStruct::new(tid, core, vm));
        tid
    }

    /// Create a thread pinned to `core` sharing `leader`'s address space
    /// (CLONE_VM) — the OpenMP team model. The new thread inherits the
    /// leader's color sets and policies (like a forked `task_struct` copy);
    /// colors remain per-thread in the TCB afterwards, so the
    /// *first-touching* thread's colors place each page.
    pub fn create_thread(&mut self, core: CoreId, leader: Tid) -> Result<Tid, Errno> {
        assert!(core.index() < self.topology.core_count(), "no such core");
        let vm = self.task(leader)?.vm;
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let mut t = TaskStruct::new(tid, core, vm);
        t.inherit_from(self.task(leader)?);
        self.tasks.insert(tid, t);
        Ok(tid)
    }

    /// The `exit()` system call: destroy `tid` and reclaim everything it
    /// exclusively owned.
    pub fn sys_exit(&mut self, tid: Tid) -> Result<(), Errno> {
        self.destroy_task(tid)
    }

    /// Tear a task down: remove its TCB, drain its pcp batch back to the
    /// buddy allocator and — when it was the last CLONE_VM sharer — tear its
    /// address space down, returning every frame to the pool recorded in its
    /// PTE. When the last *colored* task leaves, the color matrix is nothing
    /// but a cache of free pages, so it drains back to the buddy allocator:
    /// after arbitrary churn the free-pool populations return to their
    /// post-boot baseline (zero leaked frames, zero pool skew).
    pub fn destroy_task(&mut self, tid: Tid) -> Result<(), Errno> {
        let mut task = self.tasks.remove(&tid).ok_or(Errno::Esrch)?;
        for f in task.pcp.drain(..) {
            self.buddy.free(f, 0);
        }
        let vm = task.vm;
        if !self.tasks.values().any(|t| t.vm == vm) {
            let ptes = self.vms[vm.0].teardown();
            if !ptes.is_empty() {
                // Existing translations died: caches above must flush.
                self.translation_epoch += 1;
            }
            self.resident_pages -= ptes.len() as u64;
            for pte in ptes {
                self.rmap_clear(pte.frame);
                self.release_frame(pte.frame, pte.source);
            }
        }
        if !self.tasks.values().any(|t| t.coloring_active()) {
            for f in self.colors.drain_all() {
                self.buddy.free(f, 0);
            }
        }
        Ok(())
    }

    /// Immutable task access.
    pub fn task(&self, tid: Tid) -> Result<&TaskStruct, Errno> {
        self.tasks.get(&tid).ok_or(Errno::Esrch)
    }

    /// Mutable task access.
    pub fn task_mut(&mut self, tid: Tid) -> Result<&mut TaskStruct, Errno> {
        self.tasks.get_mut(&tid).ok_or(Errno::Esrch)
    }

    /// Set the base policy used when no colors are active.
    pub fn set_policy(&mut self, tid: Tid, policy: HeapPolicy) -> Result<(), Errno> {
        self.task_mut(tid)?.policy = policy;
        Ok(())
    }

    /// Set what a colored allocation does when its color supply runs dry.
    pub fn set_exhaustion_policy(
        &mut self,
        tid: Tid,
        policy: ExhaustionPolicy,
    ) -> Result<(), Errno> {
        self.task_mut(tid)?.exhaustion = policy;
        Ok(())
    }

    // ------------------------------------------------------------------
    // System calls
    // ------------------------------------------------------------------

    /// The `mmap()` system call. Color protocol (zero length + bit 30 in
    /// `prot`) or ordinary anonymous mapping of `length` bytes.
    pub fn sys_mmap(
        &mut self,
        tid: Tid,
        addr_arg: u64,
        length: u64,
        prot: u64,
    ) -> Result<VirtAddr, Errno> {
        if length == 0 {
            if prot & COLOR_ALLOC == 0 {
                return Err(Errno::Einval);
            }
            let op = self.decode_color_op(addr_arg)?;
            self.task_mut(tid)?.apply(op);
            return Ok(VirtAddr(0));
        }
        let pages = length.div_ceil(PAGE_SIZE);
        let vm = self.task(tid)?.vm;
        if Self::inject(&mut self.fault, &mut self.stats, FaultSite::SysMmap) {
            return Err(Errno::Enomem);
        }
        Ok(self.vms[vm.0].map_region(pages))
    }

    /// The `munmap()` system call: unmap a region and return its frames to
    /// the pool each was allocated from — color-list pages back to their
    /// color lists (the paper: "calls to free heap space ... add pages to
    /// the corresponding colored free lists"), buddy pages back to the
    /// buddy allocator. Routing is by the provenance recorded in each PTE,
    /// never by the task's *current* coloring flags: a `CLEAR_MEM_COLOR`
    /// before unmap, or an exhaustion fallback that served buddy pages to a
    /// colored task, must not drain one pool into the other.
    pub fn sys_munmap(&mut self, tid: Tid, base: VirtAddr, length: u64) -> Result<(), Errno> {
        let pages = length.div_ceil(PAGE_SIZE);
        let vm = self.tasks.get(&tid).ok_or(Errno::Esrch)?.vm;
        let ptes = self.vms[vm.0].unmap_region(base, pages)?;
        if !ptes.is_empty() {
            self.translation_epoch += 1;
        }
        self.resident_pages -= ptes.len() as u64;
        for pte in ptes {
            self.rmap_clear(pte.frame);
            self.release_frame(pte.frame, pte.source);
        }
        Ok(())
    }

    /// Return one order-0 frame to the pool it was allocated from.
    fn release_frame(&mut self, frame: FrameNumber, source: FrameSource) {
        match source {
            FrameSource::Colors => self.colors.push(frame),
            FrameSource::Buddy => self.buddy.free(frame, 0),
        }
    }

    fn decode_color_op(&self, addr_arg: u64) -> Result<ColorOp, Errno> {
        let mode = addr_arg & !COLOR_MASK;
        let color = addr_arg & COLOR_MASK;
        match mode {
            SET_MEM_COLOR => {
                if (color as usize) < self.mapping.bank_color_count() {
                    Ok(ColorOp::SetMemColor(BankColor(color as u16)))
                } else {
                    Err(Errno::Einval)
                }
            }
            SET_LLC_COLOR => {
                if (color as usize) < self.mapping.llc_color_count() {
                    Ok(ColorOp::SetLlcColor(LlcColor(color as u16)))
                } else {
                    Err(Errno::Einval)
                }
            }
            CLEAR_MEM_COLOR => Ok(ColorOp::ClearMemColors),
            CLEAR_LLC_COLOR => Ok(ColorOp::ClearLlcColors),
            _ => Err(Errno::Einval),
        }
    }

    // ------------------------------------------------------------------
    // Page faults and translation
    // ------------------------------------------------------------------

    /// Translate `addr` for `tid`, taking a page fault (and allocating a
    /// frame under the task's policy) on first touch.
    pub fn translate(&mut self, tid: Tid, addr: VirtAddr) -> Result<Translation, Errno> {
        let task = self.tasks.get(&tid).ok_or(Errno::Esrch)?;
        if let Some(phys) = self.vms[task.vm.0].translate(addr) {
            return Ok(Translation {
                phys,
                fault_cycles: 0,
            });
        }
        let out = self.page_fault(tid, addr.page())?;
        Ok(Translation {
            phys: out.frame.at(addr.page_offset()),
            fault_cycles: out.cycles,
        })
    }

    /// Handle a page fault at `page` for `tid`: allocate a frame under the
    /// faulting task's policy (Algorithm 1 for colored tasks) and install it
    /// into the task's — possibly shared — address space.
    pub fn page_fault(&mut self, tid: Tid, page: PageNumber) -> Result<AllocOutcome, Errno> {
        let task = self.tasks.get_mut(&tid).ok_or(Errno::Esrch)?;
        let vm = task.vm;
        if self.vms[vm.0].vma_of(page).is_none() {
            return Err(Errno::Efault);
        }
        if let Some(pte) = self.vms[vm.0].pte(page) {
            // Spurious fault: the page is already resident (e.g. a direct
            // `page_fault` call on a mapped page, or a CLONE_VM teammate won
            // the race). Nothing to allocate or install.
            return Ok(AllocOutcome {
                frame: pte.frame,
                cycles: 0,
                source: pte.source,
            });
        }
        if Self::inject(&mut self.fault, &mut self.stats, FaultSite::PageFault) {
            return Err(Errno::Enomem);
        }
        let out = Self::alloc_pages(
            &self.mapping,
            &self.topology,
            &mut self.buddy,
            &mut self.colors,
            &mut self.stats,
            &self.costs,
            &mut self.fault,
            task,
            0,
        )?;
        if let Err(e) = self.vms[vm.0].install(page, out.frame, out.source) {
            // Unreachable (the VMA was checked above); if it ever regresses,
            // return the frame instead of leaking it and surface the error.
            self.release_frame(out.frame, out.source);
            return Err(e);
        }
        self.rmap_set(out.frame, vm.0, page.0);
        self.resident_pages += 1;
        self.stats.page_faults += 1;
        self.stats.fault_cycles += out.cycles;
        Ok(out)
    }

    /// Allocate a raw `2^order`-page block for `tid` (no page-table
    /// involvement). Exposes Algorithm 1's order gate: order-0 requests from
    /// colored tasks go through the color lists; **orders greater than zero
    /// always default to the standard buddy allocator** ("return page from
    /// normal_buddy_alloc"), exactly as the paper restricts TintMalloc to
    /// order-zero requests (§III.C).
    pub fn alloc_pages_raw(&mut self, tid: Tid, order: u32) -> Result<AllocOutcome, Errno> {
        assert!(order <= MAX_ORDER, "order beyond MAX_ORDER");
        let task = self.tasks.get_mut(&tid).ok_or(Errno::Esrch)?;
        let out = Self::alloc_pages(
            &self.mapping,
            &self.topology,
            &mut self.buddy,
            &mut self.colors,
            &mut self.stats,
            &self.costs,
            &mut self.fault,
            task,
            order,
        )?;
        self.untracked_pages += 1 << order;
        Ok(out)
    }

    /// Free a block obtained from [`Kernel::alloc_pages_raw`].
    pub fn free_pages_raw(&mut self, frame: FrameNumber, order: u32) {
        self.buddy.free(frame, order);
        self.untracked_pages = self.untracked_pages.saturating_sub(1 << order);
    }

    /// Dynamic recoloring: migrate every resident page of `tid`'s address
    /// space whose frame violates the task's *current* color constraints to
    /// a conforming frame (an extension of the paper's design, where colors
    /// are fixed at initialization). Old frames return to their color lists;
    /// the caller is charged `page_copy` plus the usual Algorithm-1 cost per
    /// migrated page.
    ///
    /// Returns `(pages_migrated, cycles_charged)`. On color exhaustion the
    /// migration stops early with `ENOMEM`; already-migrated pages keep
    /// their new frames (partial migration, like an interrupted kernel
    /// compaction pass).
    pub fn recolor_task(&mut self, tid: Tid) -> Result<(u64, u64), Errno> {
        self.recolor(tid, None)
    }

    /// Range-scoped recoloring (like `migrate_pages`/`mbind` on a range):
    /// migrate only the resident pages of `[base, base + len)` — the right
    /// tool inside a CLONE_VM team, where whole-space recoloring would drag
    /// teammates' pages onto the caller's colors.
    pub fn recolor_range(
        &mut self,
        tid: Tid,
        base: VirtAddr,
        len: u64,
    ) -> Result<(u64, u64), Errno> {
        self.recolor(tid, Some((base.page(), len.div_ceil(PAGE_SIZE))))
    }

    fn recolor(&mut self, tid: Tid, range: Option<(PageNumber, u64)>) -> Result<(u64, u64), Errno> {
        let task = self.tasks.get(&tid).ok_or(Errno::Esrch)?;
        if !task.coloring_active() {
            return Ok((0, 0));
        }
        let vm = task.vm;
        // Collect the violating pages first (cannot mutate while iterating).
        let violating: Vec<(PageNumber, FrameNumber)> = self.vms[vm.0]
            .resident()
            .filter(|&(p, _)| {
                range.is_none_or(|(start, pages)| p.0 >= start.0 && p.0 < start.0 + pages)
            })
            .filter(|&(_, f)| !Self::frame_matches(&self.mapping, task, f))
            .collect();
        let mut cycles = 0u64;
        let mut migrated = 0u64;
        for (page, _) in violating {
            let Some(task) = self.tasks.get_mut(&tid) else {
                self.stats.pages_migrated += migrated;
                self.stats.fault_cycles += cycles;
                return Err(Errno::Esrch);
            };
            let out = Self::alloc_pages(
                &self.mapping,
                &self.topology,
                &mut self.buddy,
                &mut self.colors,
                &mut self.stats,
                &self.costs,
                &mut self.fault,
                task,
                0,
            );
            let out = match out {
                Ok(o) => o,
                Err(e) => {
                    self.stats.pages_migrated += migrated;
                    self.stats.fault_cycles += cycles;
                    return Err(e);
                }
            };
            if Self::inject(&mut self.fault, &mut self.stats, FaultSite::PageCopy) {
                // The copy "failed" after the destination frame was
                // allocated: roll the destination back to its origin pool.
                // The old frame stays mapped, no translation changed, so the
                // epoch is untouched — already-migrated pages keep their new
                // frames, exactly like an interrupted compaction pass.
                self.release_frame(out.frame, out.source);
                self.stats.pages_migrated += migrated;
                self.stats.fault_cycles += cycles;
                return Err(Errno::Enomem);
            }
            let prev = self.vms[vm.0].remap(page, out.frame, out.source);
            self.translation_epoch += 1;
            self.rmap_clear(prev.frame);
            self.rmap_set(out.frame, vm.0, page.0);
            self.release_frame(prev.frame, prev.source);
            cycles += out.cycles + self.costs.page_copy;
            migrated += 1;
        }
        self.stats.pages_migrated += migrated;
        self.stats.fault_cycles += cycles;
        Ok((migrated, cycles))
    }

    // ------------------------------------------------------------------
    // Algorithm 1
    // ------------------------------------------------------------------

    /// Colored page selection (paper Algorithm 1) plus the legacy and
    /// first-touch fallbacks. Associated function to allow split borrows.
    #[allow(clippy::too_many_arguments)]
    fn alloc_pages(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        colors: &mut ColorMatrix,
        stats: &mut KernelStats,
        costs: &KernelCosts,
        fault: &mut Option<FaultInjector>,
        task: &mut TaskStruct,
        order: u32,
    ) -> Result<AllocOutcome, Errno> {
        if order == 0 && task.coloring_active() {
            return Self::colored_alloc(
                mapping, topology, buddy, colors, stats, costs, fault, task,
            );
        }
        if order == 0 && task.policy == HeapPolicy::FirstTouch {
            return Self::first_touch_alloc(mapping, topology, buddy, colors, stats, costs, task);
        }
        if order == 0 {
            // Legacy buddy path ("return page from normal_buddy_alloc"),
            // with Linux's per-CPU page batching: a refill reserves a run of
            // contiguous frames so each task's faults stream sequentially.
            if task.pcp.is_empty() {
                Self::refill_pcp(buddy, task, |_| true);
            }
            let frame = task.pcp.pop_front().ok_or(Errno::Enomem)?;
            stats.legacy_allocs += 1;
            return Ok(AllocOutcome {
                frame,
                cycles: costs.page_fault,
                source: FrameSource::Buddy,
            });
        }
        let frame = buddy.alloc(order).ok_or(Errno::Enomem)?;
        stats.legacy_allocs += 1 << order;
        Ok(AllocOutcome {
            frame,
            cycles: costs.page_fault,
            source: FrameSource::Buddy,
        })
    }

    /// Linux pcp batch size (order-0 pages reserved per refill).
    const PCP_BATCH: u64 = 32;

    /// Refill a task's pcp list with up to [`Self::PCP_BATCH`] *contiguous*
    /// frames starting at the lowest free frame satisfying `pred`.
    fn refill_pcp<P: Fn(FrameNumber) -> bool>(
        buddy: &mut BuddyAllocator,
        task: &mut TaskStruct,
        pred: P,
    ) {
        let Some(start) = buddy.lowest_free_matching(&pred) else {
            return;
        };
        for i in 0..Self::PCP_BATCH {
            let f = FrameNumber(start.0 + i);
            if f.0 >= buddy.frame_count() || !pred(f) || !buddy.alloc_specific(f) {
                break;
            }
            task.pcp.push_back(f);
        }
    }

    /// Try to pop a page matching the task's flags/colors, rotating the
    /// task's cursors on success so pages spread across its color set.
    ///
    /// When only the LLC is colored, banks are unconstrained — but a stock
    /// Linux kernel would still serve the fault from the local node's zone,
    /// so the bank rotation prefers the faulting task's local bank colors
    /// before spilling to remote ones.
    fn try_pop_colored(
        mapping: &AddressMapping,
        topology: &Topology,
        colors: &mut ColorMatrix,
        task: &mut TaskStruct,
    ) -> Option<FrameNumber> {
        if task.using_bank && task.using_llc {
            // Rotate the *bank* cursor every allocation (LLC cursor on
            // wrap-around): consecutive pages land on different banks, so a
            // thread's own streams never chase each other on one bank.
            let m = task.mem_colors().len();
            let l = task.llc_colors().len();
            for i in 0..m {
                let bc = task.mem_colors()[(task.mem_cursor + i) % m];
                for j in 0..l {
                    let llc = task.llc_colors()[(task.llc_cursor + j) % l];
                    if let Some(f) = colors.pop(bc, llc) {
                        task.mem_cursor = (task.mem_cursor + 1) % m;
                        if task.mem_cursor == 0 {
                            task.llc_cursor = (task.llc_cursor + 1) % l;
                        }
                        return Some(f);
                    }
                }
            }
            None
        } else if task.using_bank {
            let m = task.mem_colors().len();
            for i in 0..m {
                let bc = task.mem_colors()[(task.mem_cursor + i) % m];
                if let Some((f, _)) = colors.pop_bank(bc, task.llc_cursor) {
                    task.mem_cursor = (task.mem_cursor + 1) % m;
                    task.llc_cursor = task.llc_cursor.wrapping_add(1);
                    return Some(f);
                }
            }
            None
        } else {
            // LLC-only coloring: the caller drives two stages — local banks
            // only (zone-local preference), then any bank (remote spill).
            Self::try_pop_llc_only(mapping, topology, colors, task, true)
                .or_else(|| Self::try_pop_llc_only(mapping, topology, colors, task, false))
        }
    }

    /// LLC-only pop restricted to the local node's banks (`local_only`) or
    /// to any bank. Rotates the task's cursors on success.
    fn try_pop_llc_only(
        mapping: &AddressMapping,
        topology: &Topology,
        colors: &mut ColorMatrix,
        task: &mut TaskStruct,
        local_only: bool,
    ) -> Option<FrameNumber> {
        let l = task.llc_colors().len();
        let node = topology.node_of_core(task.core);
        let cpn = mapping.bank_colors_per_node();
        let lo = node.index() * cpn;
        let banks = mapping.bank_color_count();
        for j in 0..l {
            let llc = task.llc_colors()[(task.llc_cursor + j) % l];
            let mut found = None;
            if local_only {
                for i in 0..cpn {
                    let bc = BankColor((lo + (task.mem_cursor + i) % cpn) as u16);
                    if let Some(f) = colors.pop(bc, llc) {
                        found = Some(f);
                        break;
                    }
                }
            } else {
                for b in 0..banks {
                    if b >= lo && b < lo + cpn {
                        continue;
                    }
                    if let Some(f) = colors.pop(BankColor(b as u16), llc) {
                        found = Some(f);
                        break;
                    }
                }
            }
            if let Some(f) = found {
                task.llc_cursor = (task.llc_cursor + 1) % l;
                task.mem_cursor = task.mem_cursor.wrapping_add(1);
                return Some(f);
            }
        }
        None
    }

    /// Does a frame satisfy the task's color requirements?
    fn frame_matches(mapping: &AddressMapping, task: &TaskStruct, f: FrameNumber) -> bool {
        let d = mapping.decode_frame(f);
        (!task.using_bank || task.mem_colors().contains(&d.bank_color))
            && (!task.using_llc || task.llc_colors().contains(&d.llc_color))
    }

    /// Find a free buddy block (lowest order, lowest address) containing at
    /// least one frame satisfying `pred`. Also returns how many blocks were
    /// examined, which the caller charges to the faulting task.
    fn find_matching_block<P: Fn(FrameNumber) -> bool>(
        buddy: &BuddyAllocator,
        pred: P,
    ) -> (u64, Option<(u32, FrameNumber)>) {
        let mut scanned = 0u64;
        for order in 0..=MAX_ORDER {
            for start in buddy.blocks(order) {
                scanned += 1;
                let n = 1u64 << order;
                if (0..n).any(|i| pred(FrameNumber(start.0 + i))) {
                    return (scanned, Some((order, start)));
                }
            }
        }
        (scanned, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn colored_alloc(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        colors: &mut ColorMatrix,
        stats: &mut KernelStats,
        costs: &KernelCosts,
        fault: &mut Option<FaultInjector>,
        task: &mut TaskStruct,
    ) -> Result<AllocOutcome, Errno> {
        let mut extra = 0u64;
        let llc_only = task.using_llc && !task.using_bank;
        // Stage 1 (LLC-only coloring): local-node pages, replenishing from
        // buddy blocks that contain a *local* frame of a wanted color —
        // zone-local free-list traversal — before any remote spill.
        if llc_only {
            let node = topology.node_of_core(task.core);
            loop {
                if let Some(frame) = Self::try_pop_llc_only(mapping, topology, colors, task, true) {
                    stats.colored_allocs += 1;
                    return Ok(AllocOutcome {
                        frame,
                        cycles: costs.page_fault + extra,
                        source: FrameSource::Colors,
                    });
                }
                if Self::inject(fault, stats, FaultSite::BuddyReplenish) {
                    return Err(Errno::Eagain);
                }
                let (scanned, found) = Self::find_matching_block(buddy, |f| {
                    let d = mapping.decode_frame(f);
                    d.node == node && Self::frame_matches(mapping, task, f)
                });
                extra += costs.block_scan * scanned;
                match found {
                    Some((order, start)) => {
                        if Self::inject(fault, stats, FaultSite::CreateColorList) {
                            return Err(Errno::Eagain);
                        }
                        buddy.take_block(order, start);
                        let moved = colors.create_color_list(order, start);
                        stats.create_color_list_calls += 1;
                        stats.pages_moved += moved;
                        extra += costs.per_page_move * moved;
                    }
                    None => break, // local supply exhausted: fall through
                }
            }
        }
        // Stage 2: the general path (for bank-colored tasks this is the only
        // stage; for LLC-only tasks it is the remote spill).
        loop {
            let popped = if llc_only {
                Self::try_pop_llc_only(mapping, topology, colors, task, false)
            } else {
                Self::try_pop_colored(mapping, topology, colors, task)
            };
            if let Some(frame) = popped {
                stats.colored_allocs += 1;
                return Ok(AllocOutcome {
                    frame,
                    cycles: costs.page_fault + extra,
                    source: FrameSource::Colors,
                });
            }
            if Self::inject(fault, stats, FaultSite::BuddyReplenish) {
                return Err(Errno::Eagain);
            }
            let (scanned, found) =
                Self::find_matching_block(buddy, |f| Self::frame_matches(mapping, task, f));
            extra += costs.block_scan * scanned;
            match found {
                Some((order, start)) => {
                    if Self::inject(fault, stats, FaultSite::CreateColorList) {
                        return Err(Errno::Eagain);
                    }
                    buddy.take_block(order, start);
                    let moved = colors.create_color_list(order, start);
                    stats.create_color_list_calls += 1;
                    stats.pages_moved += moved;
                    extra += costs.per_page_move * moved;
                }
                None => {
                    return Self::exhausted_alloc(
                        mapping, topology, buddy, colors, stats, costs, task, extra,
                    );
                }
            }
        }
    }

    /// The task's color supply is truly exhausted: no free page of an owned
    /// color remains and no buddy block can replenish the lists. Dispatch on
    /// the task's [`ExhaustionPolicy`].
    #[allow(clippy::too_many_arguments)]
    fn exhausted_alloc(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        colors: &mut ColorMatrix,
        stats: &mut KernelStats,
        costs: &KernelCosts,
        task: &mut TaskStruct,
        mut extra: u64,
    ) -> Result<AllocOutcome, Errno> {
        match task.exhaustion {
            ExhaustionPolicy::Strict => {}
            ExhaustionPolicy::NearestColor => {
                if let Some(frame) = Self::nearest_color_alloc(
                    mapping, topology, buddy, colors, stats, costs, task, &mut extra,
                ) {
                    task.off_color_allocs += 1;
                    stats.off_color_allocs += 1;
                    return Ok(AllocOutcome {
                        frame,
                        cycles: costs.page_fault + extra,
                        source: FrameSource::Colors,
                    });
                }
            }
            ExhaustionPolicy::LocalUncolored => {
                if let Some((frame, source)) =
                    Self::local_uncolored_alloc(mapping, topology, buddy, colors, task)
                {
                    task.exhaustion_fallbacks += 1;
                    stats.exhaustion_fallbacks += 1;
                    return Ok(AllocOutcome {
                        frame,
                        cycles: costs.page_fault + extra,
                        source,
                    });
                }
            }
        }
        stats.color_enomem += 1;
        Err(Errno::Enomem)
    }

    /// [`ExhaustionPolicy::NearestColor`]: borrow a page of the *nearest*
    /// non-owned color. For bank-colored tasks the bank constraint is
    /// relaxed — candidates are the non-owned bank colors on the nodes the
    /// owned colors live on, ordered by color-index distance — while any LLC
    /// constraint is kept. For LLC-only tasks the LLC constraint is relaxed
    /// the same way. Cursors are *not* advanced: borrowed pages must not
    /// perturb the task's on-color rotation.
    #[allow(clippy::too_many_arguments)]
    fn nearest_color_alloc(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        colors: &mut ColorMatrix,
        stats: &mut KernelStats,
        costs: &KernelCosts,
        task: &TaskStruct,
        extra: &mut u64,
    ) -> Option<FrameNumber> {
        if task.using_bank {
            let owned = task.mem_colors();
            let mut nodes: Vec<usize> = owned
                .iter()
                .map(|&c| mapping.node_of_bank_color(c).index())
                .collect();
            nodes.sort_unstable();
            nodes.dedup();
            let mut candidates: Vec<(usize, usize)> = (0..mapping.bank_color_count())
                .filter(|&b| !owned.contains(&BankColor(b as u16)))
                .filter(|&b| {
                    nodes.contains(&mapping.node_of_bank_color(BankColor(b as u16)).index())
                })
                .map(|b| {
                    let dist = owned
                        .iter()
                        .map(|&c| (b as isize - c.index() as isize).unsigned_abs())
                        .min()
                        .expect("using_bank implies owned colors");
                    (dist, b)
                })
                .collect();
            candidates.sort_unstable();
            for (_, b) in candidates {
                let bc = BankColor(b as u16);
                if let Some(f) = Self::pop_borrowed_bank(colors, task, bc) {
                    return Some(f);
                }
                // Targeted replenish for the borrowed color only.
                let (scanned, found) = Self::find_matching_block(buddy, |f| {
                    let d = mapping.decode_frame(f);
                    d.bank_color == bc
                        && (!task.using_llc || task.llc_colors().contains(&d.llc_color))
                });
                *extra += costs.block_scan * scanned;
                if let Some((order, start)) = found {
                    buddy.take_block(order, start);
                    let moved = colors.create_color_list(order, start);
                    stats.create_color_list_calls += 1;
                    stats.pages_moved += moved;
                    *extra += costs.per_page_move * moved;
                    if let Some(f) = Self::pop_borrowed_bank(colors, task, bc) {
                        return Some(f);
                    }
                }
            }
            None
        } else {
            // LLC-only coloring: relax the LLC constraint to the nearest
            // non-owned LLC color, preferring the local node's banks the way
            // the on-color path does.
            let owned = task.llc_colors();
            let node = topology.node_of_core(task.core);
            let mut candidates: Vec<(usize, usize)> = (0..mapping.llc_color_count())
                .filter(|&l| !owned.contains(&LlcColor(l as u16)))
                .map(|l| {
                    let dist = owned
                        .iter()
                        .map(|&c| (l as isize - c.index() as isize).unsigned_abs())
                        .min()
                        .expect("using_llc implies owned colors");
                    (dist, l)
                })
                .collect();
            candidates.sort_unstable();
            for (_, l) in candidates {
                let llc = LlcColor(l as u16);
                if let Some((f, _)) = colors.pop_llc(llc, task.mem_cursor) {
                    return Some(f);
                }
                let (scanned, found) = Self::find_matching_block(buddy, |f| {
                    let d = mapping.decode_frame(f);
                    d.node == node && d.llc_color == llc
                });
                *extra += costs.block_scan * scanned;
                if let Some((order, start)) = found {
                    buddy.take_block(order, start);
                    let moved = colors.create_color_list(order, start);
                    stats.create_color_list_calls += 1;
                    stats.pages_moved += moved;
                    *extra += costs.per_page_move * moved;
                    if let Some((f, _)) = colors.pop_llc(llc, task.mem_cursor) {
                        return Some(f);
                    }
                }
            }
            None
        }
    }

    /// Pop from a borrowed bank color, honouring the task's LLC constraint
    /// (if any) without advancing its cursors.
    fn pop_borrowed_bank(
        colors: &mut ColorMatrix,
        task: &TaskStruct,
        bc: BankColor,
    ) -> Option<FrameNumber> {
        if task.using_llc {
            let l = task.llc_colors().len();
            (0..l).find_map(|j| {
                let llc = task.llc_colors()[(task.llc_cursor + j) % l];
                colors.pop(bc, llc)
            })
        } else {
            colors.pop_bank(bc, task.llc_cursor).map(|(f, _)| f)
        }
    }

    /// [`ExhaustionPolicy::LocalUncolored`]: the paper's §III.C degraded
    /// mode. Abandon both color constraints but keep controller locality:
    /// serve from the local node's buddy pages first, then local pages
    /// parked in other colors' lists, then any buddy page, then any parked
    /// page. Each served frame is tagged with the pool it actually left —
    /// the buddy-served branches hand out [`FrameSource::Buddy`] frames to
    /// a *colored* task, which is exactly why reclamation cannot route by
    /// the task's flags. Returns `None` only when physical memory is truly
    /// gone.
    fn local_uncolored_alloc(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        colors: &mut ColorMatrix,
        task: &TaskStruct,
    ) -> Option<(FrameNumber, FrameSource)> {
        let node = topology.node_of_core(task.core);
        if let Some(f) = buddy.lowest_free_matching(|f| mapping.decode_frame(f).node == node) {
            if buddy.alloc_specific(f) {
                return Some((f, FrameSource::Buddy));
            }
        }
        for bc in mapping.bank_colors_of_node(node) {
            if let Some((f, _)) = colors.pop_bank(bc, 0) {
                return Some((f, FrameSource::Colors));
            }
        }
        if let Some(f) = buddy.alloc(0) {
            return Some((f, FrameSource::Buddy));
        }
        for b in 0..mapping.bank_color_count() {
            if let Some((f, _)) = colors.pop_bank(BankColor(b as u16), 0) {
                return Some((f, FrameSource::Colors));
            }
        }
        None
    }

    /// The NUMA-aware buddy behaviour of a stock Linux kernel: serve the
    /// fault from the *lowest free frame on the faulting task's local node*
    /// (zone-list preference), falling back to any free frame when the node
    /// is exhausted. Bursts of faults therefore receive contiguous local
    /// frames — preserving row-buffer locality but sharing banks and LLC
    /// colors freely between tasks, exactly the baseline the paper beats.
    fn first_touch_alloc(
        mapping: &AddressMapping,
        topology: &Topology,
        buddy: &mut BuddyAllocator,
        _colors: &mut ColorMatrix,
        stats: &mut KernelStats,
        costs: &KernelCosts,
        task: &mut TaskStruct,
    ) -> Result<AllocOutcome, Errno> {
        let node = topology.node_of_core(task.core);
        if task.pcp.is_empty() {
            Self::refill_pcp(buddy, task, |f| mapping.decode_frame(f).node == node);
        }
        if let Some(frame) = task.pcp.pop_front() {
            stats.firsttouch_allocs += 1;
            return Ok(AllocOutcome {
                frame,
                cycles: costs.page_fault,
                source: FrameSource::Buddy,
            });
        }
        // Local node exhausted: fall back to any free page (remote).
        let frame = buddy.alloc(0).ok_or(Errno::Enomem)?;
        stats.fallback_allocs += 1;
        Ok(AllocOutcome {
            frame,
            cycles: costs.page_fault,
            source: FrameSource::Buddy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(
            AddressMapping::tiny(),
            Topology::new(2, 1, 2),
            KernelCosts::default(),
        )
    }

    fn colored_task(k: &mut Kernel, core: usize, bank: u16, llc: u16) -> Tid {
        let tid = k.create_task(CoreId(core));
        k.sys_mmap(tid, SET_MEM_COLOR | bank as u64, 0, COLOR_ALLOC)
            .unwrap();
        k.sys_mmap(tid, SET_LLC_COLOR | llc as u64, 0, COLOR_ALLOC)
            .unwrap();
        tid
    }

    #[test]
    fn boot_from_pci_matches_direct() {
        let map = AddressMapping::tiny();
        let pci = PciConfigSpace::programmed_by_bios(&map);
        let k = Kernel::boot_from_pci(&pci, Topology::new(2, 1, 2), KernelCosts::default())
            .expect("boot");
        assert_eq!(k.mapping(), &map);
    }

    #[test]
    fn color_protocol_sets_tcb() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let r = k.sys_mmap(tid, SET_LLC_COLOR | 2, 0, COLOR_ALLOC).unwrap();
        assert_eq!(r, VirtAddr(0));
        let t = k.task(tid).unwrap();
        assert!(t.using_llc && !t.using_bank);
        assert_eq!(t.llc_colors(), &[LlcColor(2)]);
    }

    #[test]
    fn zero_length_without_flag_is_einval() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        assert_eq!(k.sys_mmap(tid, 0, 0, 0), Err(Errno::Einval));
    }

    #[test]
    fn out_of_range_color_is_einval() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        assert_eq!(
            k.sys_mmap(tid, SET_LLC_COLOR | 99, 0, COLOR_ALLOC),
            Err(Errno::Einval)
        );
        assert_eq!(
            k.sys_mmap(tid, SET_MEM_COLOR | 99, 0, COLOR_ALLOC),
            Err(Errno::Einval)
        );
        assert_eq!(k.sys_mmap(tid, 7 << 60, 0, COLOR_ALLOC), Err(Errno::Einval));
    }

    #[test]
    fn unknown_task_is_esrch() {
        let mut k = kernel();
        assert_eq!(k.sys_mmap(Tid(99), 0, 4096, 0), Err(Errno::Esrch));
    }

    #[test]
    fn legacy_fault_uses_buddy() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096 * 3, 0).unwrap();
        let t = k.translate(tid, base).unwrap();
        assert!(t.fault_cycles > 0, "first touch faults");
        let again = k.translate(tid, base.offset(8)).unwrap();
        assert_eq!(again.fault_cycles, 0, "second touch is mapped");
        assert_eq!(again.phys.0, t.phys.0 + 8);
        assert_eq!(k.stats().legacy_allocs, 1);
        assert_eq!(k.stats().page_faults, 1);
    }

    #[test]
    fn colored_fault_returns_matching_colors() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 1, 2);
        let base = k.sys_mmap(tid, 0, 4096 * 8, 0).unwrap();
        for p in 0..8u64 {
            let t = k.translate(tid, base.offset(p * 4096)).unwrap();
            let d = k.mapping().decode_frame(t.phys.frame());
            assert_eq!(d.bank_color, BankColor(1), "page {p}");
            assert_eq!(d.llc_color, LlcColor(2), "page {p}");
        }
        assert_eq!(k.stats().colored_allocs, 8);
        assert!(k.stats().create_color_list_calls >= 1);
    }

    #[test]
    fn multi_color_task_rotates_colors() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        k.sys_mmap(tid, SET_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, SET_LLC_COLOR, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, SET_LLC_COLOR | 1, 0, COLOR_ALLOC).unwrap();
        let base = k.sys_mmap(tid, 0, 4096 * 8, 0).unwrap();
        let mut seen = [0u32; 2];
        for p in 0..8u64 {
            let t = k.translate(tid, base.offset(p * 4096)).unwrap();
            let d = k.mapping().decode_frame(t.phys.frame());
            assert_eq!(d.bank_color, BankColor(0));
            seen[d.llc_color.index()] += 1;
        }
        assert_eq!(seen, [4, 4], "pages spread evenly across owned LLC colors");
    }

    #[test]
    fn llc_only_coloring_ignores_banks() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        k.sys_mmap(tid, SET_LLC_COLOR | 3, 0, COLOR_ALLOC).unwrap();
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        let mut banks_seen = std::collections::HashSet::new();
        for p in 0..4u64 {
            let t = k.translate(tid, base.offset(p * 4096)).unwrap();
            let d = k.mapping().decode_frame(t.phys.frame());
            assert_eq!(d.llc_color, LlcColor(3));
            banks_seen.insert(d.bank_color);
        }
        assert!(banks_seen.len() > 1, "bank colors rotate when uncolored");
    }

    #[test]
    fn first_touch_prefers_local_node() {
        let mut k = kernel();
        // Core 1 is on node 1 in the 2×1×2 topology.
        let tid = k.create_task(CoreId(3));
        k.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
        let base = k.sys_mmap(tid, 0, 4096 * 6, 0).unwrap();
        for p in 0..6u64 {
            let t = k.translate(tid, base.offset(p * 4096)).unwrap();
            let d = k.mapping().decode_frame(t.phys.frame());
            assert_eq!(d.node.index(), 1, "page {p} must be node-local");
        }
        assert_eq!(k.stats().firsttouch_allocs, 6);
        assert_eq!(k.stats().fallback_allocs, 0);
    }

    #[test]
    fn first_touch_burst_gets_contiguous_frames() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        k.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        let frames: Vec<_> = (0..4u64)
            .map(|p| {
                k.translate(tid, base.offset(p * 4096))
                    .unwrap()
                    .phys
                    .frame()
                    .0
            })
            .collect();
        for w in frames.windows(2) {
            assert_eq!(w[1], w[0] + 1, "burst faults receive contiguous frames");
        }
    }

    #[test]
    fn first_touch_falls_back_remote_when_node_full() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0)); // node 0
        k.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
        // Node 0 owns half the tiny machine's frames.
        let node0_frames = k.mapping().frame_count() / 2;
        let base = k.sys_mmap(tid, 0, 4096 * (node0_frames + 1), 0).unwrap();
        for p in 0..node0_frames {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        assert_eq!(k.stats().fallback_allocs, 0);
        let t = k.translate(tid, base.offset(node0_frames * 4096)).unwrap();
        assert_eq!(
            k.mapping().decode_frame(t.phys.frame()).node.index(),
            1,
            "spill lands on the remote node"
        );
        assert_eq!(k.stats().fallback_allocs, 1);
    }

    #[test]
    fn colored_enomem_when_color_exhausted() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        // tiny mapping: 2^10 rows → 1024 pages of combo (0,0).
        let total = k.mapping().frames_per_color_pair();
        let base = k.sys_mmap(tid, 0, 4096 * (total + 1), 0).unwrap();
        for p in 0..total {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        let r = k.translate(tid, base.offset(total * 4096));
        assert_eq!(r, Err(Errno::Enomem), "paper: error when color exhausted");
        assert_eq!(k.stats().color_enomem, 1);
    }

    #[test]
    fn munmap_colored_pages_return_to_color_lists() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 2, 1);
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        for p in 0..4u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        let before = k.color_lists().len(BankColor(2), LlcColor(1));
        k.sys_munmap(tid, base, 4096 * 4).unwrap();
        let after = k.color_lists().len(BankColor(2), LlcColor(1));
        assert_eq!(after, before + 4);
        // And they are reusable: next faults pop them again.
        let base2 = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        for p in 0..4u64 {
            let t = k.translate(tid, base2.offset(p * 4096)).unwrap();
            assert_eq!(
                k.mapping().decode_frame(t.phys.frame()).bank_color,
                BankColor(2)
            );
        }
    }

    #[test]
    fn munmap_legacy_pages_return_to_buddy() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let free0 = k.buddy().free_pages();
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        for p in 0..4u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        // One pcp batch was reserved; 4 of its pages are installed.
        assert_eq!(k.buddy().free_pages(), free0 - 32);
        k.sys_munmap(tid, base, 4096 * 4).unwrap();
        assert_eq!(k.buddy().free_pages(), free0 - 32 + 4);
    }

    #[test]
    fn unmapped_access_is_efault() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        assert_eq!(k.translate(tid, VirtAddr(0xdead_0000)), Err(Errno::Efault));
    }

    #[test]
    fn first_colored_alloc_charges_population_cost() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        let base = k.sys_mmap(tid, 0, 4096 * 2, 0).unwrap();
        let t1 = k.translate(tid, base).unwrap();
        let t2 = k.translate(tid, base.offset(4096)).unwrap();
        assert!(
            t1.fault_cycles > t2.fault_cycles,
            "first request pays the color-list population cost (§III.C)"
        );
    }

    #[test]
    fn threads_share_address_space() {
        let mut k = kernel();
        let leader = k.create_task(CoreId(0));
        let worker = k.create_thread(CoreId(2), leader).unwrap();
        let base = k.sys_mmap(leader, 0, 4096 * 2, 0).unwrap();
        // The worker can touch the leader's mapping...
        let t = k.translate(worker, base).unwrap();
        assert!(t.fault_cycles > 0);
        // ...and the leader then sees the same frame without faulting.
        let t2 = k.translate(leader, base).unwrap();
        assert_eq!(t2.fault_cycles, 0);
        assert_eq!(t2.phys, t.phys);
    }

    #[test]
    fn first_toucher_colors_decide_placement() {
        let mut k = kernel();
        let leader = k.create_task(CoreId(0));
        let worker = k.create_thread(CoreId(2), leader).unwrap();
        // Worker owns color (3, 1); leader is uncolored.
        k.sys_mmap(worker, SET_MEM_COLOR | 3, 0, COLOR_ALLOC)
            .unwrap();
        k.sys_mmap(worker, SET_LLC_COLOR | 1, 0, COLOR_ALLOC)
            .unwrap();
        let base = k.sys_mmap(leader, 0, 4096, 0).unwrap();
        let t = k.translate(worker, base).unwrap();
        let d = k.mapping().decode_frame(t.phys.frame());
        assert_eq!(
            d.bank_color,
            BankColor(3),
            "worker's colors placed the page"
        );
        assert_eq!(d.llc_color, LlcColor(1));
    }

    #[test]
    fn create_thread_for_unknown_leader_fails() {
        let mut k = kernel();
        assert_eq!(k.create_thread(CoreId(0), Tid(77)), Err(Errno::Esrch));
    }

    #[test]
    fn recolor_migrates_violating_pages_only() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        // Touch 6 pages uncolored: frames scattered across colors.
        let base = k.sys_mmap(tid, 0, 4096 * 6, 0).unwrap();
        for p in 0..6u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        // Now adopt colors and recolor.
        k.sys_mmap(tid, SET_MEM_COLOR | 1, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, SET_LLC_COLOR | 2, 0, COLOR_ALLOC).unwrap();
        let (migrated, cycles) = k.recolor_task(tid).unwrap();
        assert!(
            migrated >= 5,
            "most scattered pages violated (got {migrated})"
        );
        assert!(cycles >= migrated * 800, "page_copy charged per page");
        // Every page now conforms, and translation is intact.
        for p in 0..6u64 {
            let tr = k.translate(tid, base.offset(p * 4096)).unwrap();
            assert_eq!(tr.fault_cycles, 0, "no re-fault after migration");
            let d = k.mapping().decode_frame(tr.phys.frame());
            assert_eq!(d.bank_color, BankColor(1));
            assert_eq!(d.llc_color, LlcColor(2));
        }
        assert_eq!(k.stats().pages_migrated, migrated);
        // A second pass is a no-op.
        assert_eq!(k.recolor_task(tid).unwrap().0, 0);
        k.color_lists().check_invariants();
    }

    #[test]
    fn recolor_uncolored_task_is_noop() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        k.translate(tid, base).unwrap();
        assert_eq!(k.recolor_task(tid).unwrap(), (0, 0));
    }

    #[test]
    fn recolor_stops_with_enomem_when_color_exhausted() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let per_pair = k.mapping().frames_per_color_pair();
        // Touch more pages than one color pair can hold, uncolored.
        let base = k.sys_mmap(tid, 0, 4096 * (per_pair + 16), 0).unwrap();
        for p in 0..per_pair + 16 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        k.sys_mmap(tid, SET_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, SET_LLC_COLOR, 0, COLOR_ALLOC).unwrap();
        let r = k.recolor_task(tid);
        assert_eq!(r, Err(Errno::Enomem), "partial migration reports ENOMEM");
        assert!(k.stats().pages_migrated > 0, "some pages did move");
        // Address space still fully translated (old frames kept where the
        // migration stopped).
        for p in 0..per_pair + 16 {
            assert_eq!(
                k.translate(tid, base.offset(p * 4096))
                    .unwrap()
                    .fault_cycles,
                0
            );
        }
    }

    #[test]
    fn order_gt_zero_defaults_to_buddy_even_when_colored() {
        // Algorithm 1 lines 27–28: only order-0 requests are colored.
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 1, 2);
        let out = k.alloc_pages_raw(tid, 3).unwrap();
        assert_eq!(out.frame.0 % 8, 0, "aligned buddy block");
        // The block's pages span multiple colors: it did NOT come from the
        // color lists.
        let colors: std::collections::HashSet<_> = (0..8)
            .map(|i| {
                k.mapping()
                    .decode_frame(FrameNumber(out.frame.0 + i))
                    .bank_color
            })
            .collect();
        assert!(
            colors.len() > 1,
            "multi-color block ⇒ normal_buddy_alloc path"
        );
        assert_eq!(k.stats().colored_allocs, 0);
        k.free_pages_raw(out.frame, 3);
        k.buddy().check_invariants();
    }

    #[test]
    fn order_zero_raw_respects_colors() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 1, 2, 3);
        let out = k.alloc_pages_raw(tid, 0).unwrap();
        let d = k.mapping().decode_frame(out.frame);
        assert_eq!(d.bank_color, BankColor(2));
        assert_eq!(d.llc_color, LlcColor(3));
        assert_eq!(k.stats().colored_allocs, 1);
    }

    #[test]
    fn boot_noise_shifts_legacy_allocation() {
        let mut k1 = kernel();
        let mut k2 = kernel();
        k2.consume_boot_noise(17);
        let t1 = k1.create_task(CoreId(0));
        let t2 = k2.create_task(CoreId(0));
        let b1 = k1.sys_mmap(t1, 0, 4096, 0).unwrap();
        let b2 = k2.sys_mmap(t2, 0, 4096, 0).unwrap();
        let p1 = k1.translate(t1, b1).unwrap().phys;
        let p2 = k2.translate(t2, b2).unwrap().phys;
        assert_ne!(p1.frame(), p2.frame());
    }

    #[test]
    fn spurious_page_fault_returns_resident_frame() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        let first = k.page_fault(tid, base.page()).unwrap();
        assert!(first.cycles > 0);
        let again = k.page_fault(tid, base.page()).unwrap();
        assert_eq!(again.frame, first.frame);
        assert_eq!(again.cycles, 0, "spurious fault is free");
        assert_eq!(k.stats().page_faults, 1, "not double-counted");
    }

    // --------------------------------------------------------------
    // Exhaustion policies
    // --------------------------------------------------------------

    /// Exhaust the (bank 0, llc 0) pair of the tiny machine and return the
    /// base of a region with one still-untouched page.
    fn exhaust_pair(k: &mut Kernel, tid: Tid) -> VirtAddr {
        let total = k.mapping().frames_per_color_pair();
        let base = k.sys_mmap(tid, 0, 4096 * (total + 4), 0).unwrap();
        for p in 0..total {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        base.offset(total * 4096)
    }

    #[test]
    fn nearest_color_borrows_adjacent_bank() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        k.set_exhaustion_policy(tid, ExhaustionPolicy::NearestColor)
            .unwrap();
        let next = exhaust_pair(&mut k, tid);
        let t = k.translate(tid, next).unwrap();
        let d = k.mapping().decode_frame(t.phys.frame());
        assert_eq!(
            d.bank_color,
            BankColor(1),
            "borrowed the adjacent local bank color"
        );
        assert_eq!(d.llc_color, LlcColor(0), "LLC constraint kept");
        assert_eq!(k.task(tid).unwrap().off_color_allocs, 1);
        assert_eq!(k.stats().off_color_allocs, 1);
        assert_eq!(k.stats().color_enomem, 0, "no failure surfaced");
        k.check_invariants();
    }

    #[test]
    fn local_uncolored_falls_back_on_node() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        k.set_exhaustion_policy(tid, ExhaustionPolicy::LocalUncolored)
            .unwrap();
        let next = exhaust_pair(&mut k, tid);
        let t = k.translate(tid, next).unwrap();
        let d = k.mapping().decode_frame(t.phys.frame());
        assert_eq!(d.node.index(), 0, "fallback stays node-local");
        assert_eq!(k.task(tid).unwrap().exhaustion_fallbacks, 1);
        assert_eq!(k.stats().exhaustion_fallbacks, 1);
        k.check_invariants();
    }

    #[test]
    fn strict_policy_still_fails_with_enomem() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        let next = exhaust_pair(&mut k, tid);
        assert_eq!(k.translate(tid, next), Err(Errno::Enomem));
        assert_eq!(k.stats().off_color_allocs, 0);
        assert_eq!(k.stats().exhaustion_fallbacks, 0);
        k.check_invariants();
    }

    #[test]
    fn graceful_policies_never_run_dry_before_memory_does() {
        // A LocalUncolored task can consume *every* frame in the machine;
        // the allocator only fails when physical memory is truly gone.
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        k.set_exhaustion_policy(tid, ExhaustionPolicy::LocalUncolored)
            .unwrap();
        let frames = k.mapping().frame_count();
        let base = k.sys_mmap(tid, 0, 4096 * (frames + 1), 0).unwrap();
        for p in 0..frames {
            k.translate(tid, base.offset(p * 4096))
                .unwrap_or_else(|e| panic!("page {p} of {frames}: {e}"));
        }
        assert_eq!(
            k.translate(tid, base.offset(frames * 4096)),
            Err(Errno::Enomem),
            "machine truly empty"
        );
        k.check_invariants();
    }

    // --------------------------------------------------------------
    // Fault injection
    // --------------------------------------------------------------

    fn always(site: FaultSite) -> FaultPlan {
        FaultPlan::new(1).with_rate(site, 1000)
    }

    #[test]
    fn injected_mmap_fault_is_enomem_and_transient() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        k.set_fault_plan(Some(always(FaultSite::SysMmap)));
        assert_eq!(k.sys_mmap(tid, 0, 4096, 0), Err(Errno::Enomem));
        assert_eq!(k.stats().injected_faults, 1);
        // Color-protocol calls do not allocate and are never injected.
        k.sys_mmap(tid, SET_MEM_COLOR | 1, 0, COLOR_ALLOC).unwrap();
        k.set_fault_plan(None);
        k.sys_mmap(tid, 0, 4096, 0).unwrap();
        k.check_invariants();
    }

    #[test]
    fn injected_replenish_fault_is_eagain_then_retry_succeeds() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 1, 2);
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        // First colored fault needs a replenish; injection fails it before
        // anything is mutated.
        k.set_fault_plan(Some(always(FaultSite::BuddyReplenish)));
        assert_eq!(k.translate(tid, base), Err(Errno::Eagain));
        k.check_invariants();
        k.set_fault_plan(None);
        let t = k.translate(tid, base).unwrap();
        let d = k.mapping().decode_frame(t.phys.frame());
        assert_eq!(d.bank_color, BankColor(1));
        assert_eq!(d.llc_color, LlcColor(2));
    }

    #[test]
    fn injected_create_color_list_fault_is_eagain() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 1, 2);
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        k.set_fault_plan(Some(always(FaultSite::CreateColorList)));
        assert_eq!(k.translate(tid, base), Err(Errno::Eagain));
        assert_eq!(k.stats().pages_moved, 0, "nothing moved before the fault");
        k.check_invariants();
        k.set_fault_plan(None);
        k.translate(tid, base).unwrap();
    }

    #[test]
    fn injected_page_fault_is_enomem_before_any_allocation() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        let free0 = k.buddy().free_pages();
        k.set_fault_plan(Some(always(FaultSite::PageFault)));
        assert_eq!(k.translate(tid, base), Err(Errno::Enomem));
        assert_eq!(k.buddy().free_pages(), free0, "no frame consumed");
        k.set_fault_plan(None);
        k.translate(tid, base).unwrap();
        k.check_invariants();
    }

    #[test]
    fn injected_page_copy_rolls_back_migration_transactionally() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096 * 6, 0).unwrap();
        for p in 0..6u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        let frames_before: Vec<_> = (0..6u64)
            .map(|p| k.translate(tid, base.offset(p * 4096)).unwrap().phys)
            .collect();
        let epoch_before = k.translation_epoch();
        k.sys_mmap(tid, SET_MEM_COLOR | 1, 0, COLOR_ALLOC).unwrap();
        k.set_fault_plan(Some(always(FaultSite::PageCopy)));
        assert_eq!(k.recolor_task(tid), Err(Errno::Enomem));
        assert_eq!(
            k.translation_epoch(),
            epoch_before,
            "no translation changed, so no epoch bump"
        );
        for (p, &phys) in frames_before.iter().enumerate() {
            let tr = k.translate(tid, base.offset(p as u64 * 4096)).unwrap();
            assert_eq!(tr.fault_cycles, 0, "page {p} still resident");
            assert_eq!(tr.phys, phys, "page {p} kept its old frame");
        }
        k.check_invariants();
        // With the weather cleared, the same migration completes.
        k.set_fault_plan(None);
        let (migrated, _) = k.recolor_task(tid).unwrap();
        assert!(migrated > 0);
        k.check_invariants();
    }

    #[test]
    fn injection_off_is_bit_identical_to_unarmed_kernel() {
        // An armed plan whose rates are all zero must reproduce the unarmed
        // kernel's exact allocation sequence (the zero-cost-when-off
        // contract underlying the baseline figures).
        let mut a = kernel();
        let mut b = kernel();
        b.set_fault_plan(Some(FaultPlan::new(99)));
        let ta = colored_task(&mut a, 0, 1, 2);
        let tb = colored_task(&mut b, 0, 1, 2);
        let ba = a.sys_mmap(ta, 0, 4096 * 64, 0).unwrap();
        let bb = b.sys_mmap(tb, 0, 4096 * 64, 0).unwrap();
        for p in 0..64u64 {
            let pa = a.translate(ta, ba.offset(p * 4096)).unwrap();
            let pb = b.translate(tb, bb.offset(p * 4096)).unwrap();
            assert_eq!(pa, pb, "page {p}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn check_invariants_passes_through_mixed_workload() {
        let mut k = kernel();
        let colored = colored_task(&mut k, 0, 2, 1);
        let legacy = k.create_task(CoreId(2));
        k.consume_boot_noise(13);
        k.check_invariants();
        let cb = k.sys_mmap(colored, 0, 4096 * 16, 0).unwrap();
        let lb = k.sys_mmap(legacy, 0, 4096 * 16, 0).unwrap();
        for p in 0..16u64 {
            k.translate(colored, cb.offset(p * 4096)).unwrap();
            k.translate(legacy, lb.offset(p * 4096)).unwrap();
        }
        k.check_invariants();
        let raw = k.alloc_pages_raw(legacy, 3).unwrap();
        k.check_invariants();
        k.sys_munmap(colored, cb, 4096 * 16).unwrap();
        k.check_invariants();
        k.free_pages_raw(raw.frame, 3);
        k.sys_mmap(colored, SET_MEM_COLOR | 3, 0, COLOR_ALLOC)
            .unwrap();
        let cb2 = k.sys_mmap(colored, 0, 4096 * 8, 0).unwrap();
        for p in 0..8u64 {
            k.translate(colored, cb2.offset(p * 4096)).unwrap();
        }
        k.recolor_task(colored).unwrap();
        k.check_invariants();
    }

    // --------------------------------------------------------------
    // Provenance routing (the sys_munmap mis-routing regressions)
    // --------------------------------------------------------------

    #[test]
    fn munmap_after_clear_color_still_returns_frames_to_color_lists() {
        // The historical bug: sys_munmap routed by the task's *current*
        // coloring flags, so CLEAR_MEM_COLOR before unmap leaked colored
        // frames into the buddy allocator. Provenance routing must return
        // them to the color lists they came from.
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 2, 1);
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        for p in 0..4u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        let list_before = k.color_lists().len(BankColor(2), LlcColor(1));
        let (buddy_before, colors_before) = k.pool_snapshot();
        k.check_invariants();
        // Drop both color sets — the task is now uncolored.
        k.sys_mmap(tid, CLEAR_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, CLEAR_LLC_COLOR, 0, COLOR_ALLOC).unwrap();
        assert!(!k.task(tid).unwrap().coloring_active());
        k.sys_munmap(tid, base, 4096 * 4).unwrap();
        let (buddy_after, colors_after) = k.pool_snapshot();
        assert_eq!(
            k.color_lists().len(BankColor(2), LlcColor(1)),
            list_before + 4,
            "colored frames went back to their origin color list"
        );
        assert_eq!(colors_after, colors_before + 4);
        assert_eq!(buddy_after, buddy_before, "buddy gained nothing");
        k.check_invariants();
    }

    #[test]
    fn munmap_uncolored_fallback_frames_return_to_buddy() {
        // The dual leak: a LocalUncolored exhaustion fallback serves a
        // *buddy* frame to a still-colored task. Routing the unmap by the
        // coloring flags would push that buddy frame into the color lists.
        //
        // Exhausting a pair on the tiny machine normally drains the whole
        // buddy into the matrix (every block holds pages of every combo), so
        // a bystander first parks one frame of a *different* color out of
        // reach, and returns it to the buddy only after exhaustion: the
        // fallback then has exactly one frame to take, and it is buddy's.
        let mut k = kernel();
        let bystander = k.create_task(CoreId(0));
        let held = k.alloc_pages_raw(bystander, 0).unwrap().frame;
        assert_ne!(
            k.mapping().decode_frame(held).bank_color,
            BankColor(2),
            "the held frame must not be able to replenish the task's pair"
        );
        let tid = colored_task(&mut k, 0, 2, 0);
        let pair = k.mapping().frames_per_color_pair();
        let base = k.sys_mmap(tid, 0, 4096 * (pair + 4), 0).unwrap();
        let mut colored = 0u64;
        while k.translate(tid, base.offset(colored * 4096)).is_ok() {
            colored += 1;
        }
        // Give the bystander's frame back: the only page left in buddy.
        k.free_pages_raw(held, 0);
        k.set_exhaustion_policy(tid, ExhaustionPolicy::LocalUncolored)
            .unwrap();
        let t = k.translate(tid, base.offset(colored * 4096)).unwrap();
        assert_eq!(t.phys.frame(), held, "fallback took the buddy frame");
        assert_eq!(k.task(tid).unwrap().exhaustion_fallbacks, 1);
        let (buddy_before, colors_before) = k.pool_snapshot();
        assert_eq!(buddy_before, 0);
        k.check_invariants();
        k.sys_munmap(tid, base, 4096 * (pair + 4)).unwrap();
        let (buddy_after, colors_after) = k.pool_snapshot();
        assert_eq!(
            buddy_after, 1,
            "the one buddy-served fallback frame went back to buddy"
        );
        assert_eq!(
            colors_after,
            colors_before + colored,
            "the colored frames went back to the color lists"
        );
        k.check_invariants();
    }

    // --------------------------------------------------------------
    // Task lifecycle (sys_exit / destroy_task)
    // --------------------------------------------------------------

    #[test]
    fn exit_of_unknown_task_is_esrch() {
        let mut k = kernel();
        assert_eq!(k.sys_exit(Tid(42)), Err(Errno::Esrch));
    }

    #[test]
    fn exit_restores_pool_baseline() {
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        let tid = colored_task(&mut k, 0, 1, 2);
        let base = k.sys_mmap(tid, 0, 4096 * 16, 0).unwrap();
        for p in 0..16u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        assert_ne!(k.pool_snapshot(), baseline, "frames are in use / parked");
        k.sys_exit(tid).unwrap();
        assert_eq!(k.task(tid).err(), Some(Errno::Esrch), "TCB removed");
        assert_eq!(
            k.pool_snapshot(),
            baseline,
            "zero leaked frames, zero pool skew after the last exit"
        );
        // check_invariants now also asserts the post-exit baseline itself.
        k.check_invariants();
    }

    #[test]
    fn exit_drains_the_pcp_cache() {
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
        for p in 0..4u64 {
            k.translate(tid, base.offset(p * 4096)).unwrap();
        }
        // A 32-frame pcp batch was reserved; only 4 frames are installed.
        assert_eq!(k.pool_snapshot().0, baseline.0 - 32);
        k.sys_exit(tid).unwrap();
        assert_eq!(k.pool_snapshot(), baseline, "pcp remainder drained too");
        k.check_invariants();
    }

    #[test]
    fn exit_bumps_translation_epoch_when_pages_were_resident() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4096, 0).unwrap();
        k.translate(tid, base).unwrap();
        let epoch = k.translation_epoch();
        k.sys_exit(tid).unwrap();
        assert!(k.translation_epoch() > epoch, "stale TLB entries shot down");
    }

    #[test]
    fn thread_exit_keeps_the_shared_address_space_alive() {
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        let leader = k.create_task(CoreId(0));
        let worker = k.create_thread(CoreId(2), leader).unwrap();
        let base = k.sys_mmap(leader, 0, 4096, 0).unwrap();
        let t = k.translate(worker, base).unwrap();
        k.sys_exit(worker).unwrap();
        // The leader still owns the mapping, same frame, no re-fault.
        let t2 = k.translate(leader, base).unwrap();
        assert_eq!(t2.fault_cycles, 0, "page survived the sibling's exit");
        assert_eq!(t2.phys, t.phys);
        // The last sharer's exit reclaims everything.
        k.sys_exit(leader).unwrap();
        assert_eq!(k.pool_snapshot(), baseline);
        k.check_invariants();
    }

    #[test]
    fn colored_frames_stay_parked_until_the_last_colored_task_exits() {
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        let a = colored_task(&mut k, 0, 0, 0);
        let b = colored_task(&mut k, 1, 1, 1);
        for &tid in &[a, b] {
            let base = k.sys_mmap(tid, 0, 4096 * 4, 0).unwrap();
            for p in 0..4u64 {
                k.translate(tid, base.offset(p * 4096)).unwrap();
            }
        }
        k.sys_exit(a).unwrap();
        assert!(
            k.pool_snapshot().1 > 0,
            "a colored task is still live: its supply stays parked"
        );
        k.check_invariants();
        k.sys_exit(b).unwrap();
        assert_eq!(
            k.pool_snapshot(),
            baseline,
            "last colored exit drains the matrix back to buddy"
        );
        k.check_invariants();
    }

    #[test]
    fn create_thread_inherits_the_leader_color_set() {
        let mut k = kernel();
        let leader = colored_task(&mut k, 0, 3, 1);
        k.set_exhaustion_policy(leader, ExhaustionPolicy::NearestColor)
            .unwrap();
        let worker = k.create_thread(CoreId(2), leader).unwrap();
        let w = k.task(worker).unwrap();
        assert!(w.using_bank && w.using_llc, "flags inherited");
        assert_eq!(w.mem_colors(), &[BankColor(3)]);
        assert_eq!(w.llc_colors(), &[LlcColor(1)]);
        assert_eq!(w.exhaustion, ExhaustionPolicy::NearestColor);
        // And the inherited colors actually drive the worker's faults.
        let base = k.sys_mmap(worker, 0, 4096, 0).unwrap();
        let t = k.translate(worker, base).unwrap();
        let d = k.mapping().decode_frame(t.phys.frame());
        assert_eq!(d.bank_color, BankColor(3));
        assert_eq!(d.llc_color, LlcColor(1));
    }

    #[test]
    fn exit_under_churn_with_mixed_policies_leaks_nothing() {
        // A miniature churn loop over all three exhaustion policies; every
        // generation must leave the pools exactly at the boot baseline.
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        let policies = [
            ExhaustionPolicy::Strict,
            ExhaustionPolicy::NearestColor,
            ExhaustionPolicy::LocalUncolored,
        ];
        for gen in 0..6u64 {
            let tid = colored_task(&mut k, (gen % 4) as usize, (gen % 4) as u16, 0);
            k.set_exhaustion_policy(tid, policies[gen as usize % 3])
                .unwrap();
            let base = k.sys_mmap(tid, 0, 4096 * 8, 0).unwrap();
            for p in 0..8u64 {
                k.translate(tid, base.offset(p * 4096)).unwrap();
            }
            if gen % 2 == 0 {
                // Half the generations unmap before exit, half let exit
                // reclaim — both paths must route identically.
                k.sys_munmap(tid, base, 4096 * 8).unwrap();
            }
            k.sys_exit(tid).unwrap();
            assert_eq!(k.pool_snapshot(), baseline, "generation {gen} leaked");
            k.check_invariants();
        }
    }

    #[test]
    fn pressure_signal_follows_watermarks() {
        let mut k = kernel();
        assert_eq!(k.mem_pressure(), MemPressure::Normal);
        let free = k.free_frames();
        // Raise the watermarks around the current population and watch the
        // signal move through the whole band.
        k.set_watermarks(Watermarks {
            low: free,
            min: free / 2,
        });
        assert_eq!(k.mem_pressure(), MemPressure::Low);
        k.set_watermarks(Watermarks {
            low: free + 1,
            min: free,
        });
        assert_eq!(k.mem_pressure(), MemPressure::Critical);
        // Consuming frames crosses thresholds the other way round too.
        k.set_watermarks(Watermarks {
            low: free - 8,
            min: free - 16,
        });
        assert_eq!(k.mem_pressure(), MemPressure::Normal);
        k.consume_boot_noise(8);
        assert_eq!(k.mem_pressure(), MemPressure::Low);
        k.consume_boot_noise(8);
        assert_eq!(k.mem_pressure(), MemPressure::Critical);
    }

    #[test]
    fn watermark_ordering_is_enforced() {
        let mut k = kernel();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.set_watermarks(Watermarks { low: 1, min: 2 })
        }));
        assert!(r.is_err(), "min above low must be rejected");
    }

    #[test]
    fn oom_kill_picks_largest_footprint_then_youngest() {
        let mut k = kernel();
        let baseline = k.pool_snapshot();
        // Colored tasks: no pcp batch, so the footprint is exactly the
        // resident page count.
        let small = colored_task(&mut k, 0, 0, 0);
        let big = colored_task(&mut k, 1, 1, 1);
        let late = colored_task(&mut k, 2, 2, 2);
        for (tid, pages) in [(small, 2u64), (big, 6), (late, 2)] {
            let base = k.sys_mmap(tid, 0, pages * PAGE_SIZE, 0).unwrap();
            for p in 0..pages {
                k.translate(tid, base.offset(p * PAGE_SIZE)).unwrap();
            }
        }
        // Largest footprint wins outright...
        let kill = k.oom_kill(VictimPolicy::LargestFootprint).unwrap();
        assert_eq!(kill.victim, big);
        assert!(kill.frames_reclaimed >= 6, "the victim's frames came back");
        // ...and equal footprints break towards the youngest (largest tid).
        let kill = k.oom_kill(VictimPolicy::LargestFootprint).unwrap();
        assert_eq!(kill.victim, late);
        let kill = k.oom_kill(VictimPolicy::Youngest).unwrap();
        assert_eq!(kill.victim, small);
        assert_eq!(k.stats().oom_kills, 3);
        assert_eq!(k.pool_snapshot(), baseline, "kills reclaim like exits");
        k.check_invariants();
        // An empty machine has nobody left to kill.
        assert_eq!(
            k.oom_kill(VictimPolicy::LargestFootprint),
            Err(Errno::Esrch)
        );
    }

    #[test]
    fn audit_step_sweeps_cleanly_and_wraps() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 1, 2);
        let base = k.sys_mmap(tid, 0, 16 * PAGE_SIZE, 0).unwrap();
        for p in 0..16u64 {
            k.translate(tid, base.offset(p * PAGE_SIZE)).unwrap();
        }
        let total = k.mapping().frame_count();
        let mut cursor = AuditCursor::default();
        let mut audited = 0;
        while audited < 2 * total {
            audited += k.audit_step(&mut cursor, 1024);
        }
        assert_eq!(cursor.next, 0, "two full wraps land back at frame 0");
        k.sys_exit(tid).unwrap();
        k.audit_step(&mut cursor, total);
    }

    #[test]
    #[should_panic(expected = "page table disagrees")]
    fn audit_step_catches_a_corrupted_rmap() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, 4 * PAGE_SIZE, 0).unwrap();
        let frame = k.translate(tid, base).unwrap().phys.frame();
        // Corrupt the reverse map behind the kernel's back: point the
        // frame's entry at a page that was never mapped.
        k.rmap[frame.0 as usize] = Kernel::rmap_pack(0, 1);
        let mut cursor = AuditCursor::default();
        k.audit_step(&mut cursor, k.mapping().frame_count());
    }

    #[test]
    #[should_panic(expected = "frame conservation drifted")]
    fn audit_step_catches_a_lost_frame() {
        let mut k = kernel();
        let tid = k.create_task(CoreId(0));
        let base = k.sys_mmap(tid, 0, PAGE_SIZE, 0).unwrap();
        k.translate(tid, base).unwrap();
        // Simulate a leak: the resident counter says one fewer page than
        // the page tables actually hold.
        k.resident_pages -= 1;
        k.audit_step(&mut AuditCursor::default(), 1);
    }

    #[test]
    fn rmap_survives_recolor_and_munmap() {
        let mut k = kernel();
        let tid = colored_task(&mut k, 0, 0, 0);
        let base = k.sys_mmap(tid, 0, 8 * PAGE_SIZE, 0).unwrap();
        for p in 0..8u64 {
            k.translate(tid, base.offset(p * PAGE_SIZE)).unwrap();
        }
        // Switch colors and migrate: every remap must move the rmap entry.
        k.sys_mmap(tid, CLEAR_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
        k.sys_mmap(tid, SET_MEM_COLOR | 2, 0, COLOR_ALLOC).unwrap();
        let (migrated, _) = k.recolor_task(tid).unwrap();
        assert!(migrated > 0, "color change must migrate pages");
        k.check_invariants();
        k.audit_step(&mut AuditCursor::default(), k.mapping().frame_count());
        k.sys_munmap(tid, base, 8 * PAGE_SIZE).unwrap();
        k.sys_exit(tid).unwrap();
        k.check_invariants();
    }
}
