//! The legacy Linux buddy allocator (paper §III.C).
//!
//! Memory is partitioned into "buddies" of exponentially increasing sizes
//! (`2^(12+order)` bytes). An allocation is served from the matching order's
//! free list or by splitting the next larger buddy; a free coalesces with its
//! buddy recursively. Free lists are ordered sets keyed by start frame, so
//! allocation is deterministic (lowest address first) — which is also what
//! makes the *uncolored* baseline walk the physical address space in order
//! and smear a task's pages across LLC colors, banks, and eventually nodes.

use crate::MAX_ORDER;
use std::collections::BTreeSet;
use tint_hw::types::FrameNumber;

/// Order-indexed free lists over a flat frame range `0..frame_count`.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// `free_lists[order]` holds start frames of free `2^order`-page blocks.
    free_lists: Vec<BTreeSet<u64>>,
    frame_count: u64,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Seed the allocator with all of physical memory, split into maximal
    /// aligned blocks.
    pub fn new(frame_count: u64) -> Self {
        let mut b = Self {
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            frame_count,
            free_pages: 0,
        };
        let mut start = 0u64;
        while start < frame_count {
            // Largest order that keeps the block aligned and in range.
            let mut order = MAX_ORDER;
            loop {
                let size = 1u64 << order;
                if start.is_multiple_of(size) && start + size <= frame_count {
                    break;
                }
                order -= 1;
            }
            b.free_lists[order as usize].insert(start);
            b.free_pages += 1 << order;
            start += 1 << order;
        }
        b
    }

    /// Total frames managed.
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }

    /// Currently free pages (order-0 equivalents).
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Number of free blocks at `order`.
    pub fn free_blocks(&self, order: u32) -> usize {
        self.free_lists[order as usize].len()
    }

    /// Allocate a `2^order`-page block, splitting larger buddies as needed.
    /// Deterministic: always the lowest-addressed candidate.
    pub fn alloc(&mut self, order: u32) -> Option<FrameNumber> {
        assert!(order <= MAX_ORDER);
        // Find the smallest order with a free block.
        let from = (order..=MAX_ORDER).find(|&o| !self.free_lists[o as usize].is_empty())?;
        let start = *self.free_lists[from as usize].iter().next().unwrap();
        self.free_lists[from as usize].remove(&start);
        // Split down, returning the low half each time and freeing the high
        // half ("any remaining space is added to lower order free lists").
        for o in (order..from).rev() {
            let buddy = start + (1u64 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.free_pages -= 1 << order;
        Some(FrameNumber(start))
    }

    /// Remove a *specific* free block from `order`'s list (used by
    /// Algorithm 1 when it picks the buddy block that contains a page of the
    /// required color). Panics if the block is not free at that order.
    pub fn take_block(&mut self, order: u32, start: FrameNumber) -> FrameNumber {
        let removed = self.free_lists[order as usize].remove(&start.0);
        assert!(removed, "block {start} is not free at order {order}");
        self.free_pages -= 1 << order;
        start
    }

    /// Iterate the free blocks at `order`, lowest address first.
    pub fn blocks(&self, order: u32) -> impl Iterator<Item = FrameNumber> + '_ {
        self.free_lists[order as usize]
            .iter()
            .map(|&s| FrameNumber(s))
    }

    /// Insert a block without attempting to coalesce (used when splitting a
    /// larger block whose outside buddy is known to be allocated).
    fn insert_raw(&mut self, start: u64, order: u32) {
        let inserted = self.free_lists[order as usize].insert(start);
        assert!(inserted, "raw insert collides at {start:#x} order {order}");
        self.free_pages += 1 << order;
    }

    /// Allocate one *specific* order-0 frame if it is currently free: locate
    /// the free block containing it, split toward it, and return the
    /// complement halves to the free lists. This is how the NUMA-aware
    /// first-touch path takes the lowest local frame while preserving buddy
    /// structure. Returns `false` when the frame is not free.
    pub fn alloc_specific(&mut self, target: FrameNumber) -> bool {
        if target.0 >= self.frame_count {
            return false;
        }
        for order in 0..=MAX_ORDER {
            let block = target.0 & !((1u64 << order) - 1);
            if self.free_lists[order as usize].remove(&block) {
                self.free_pages -= 1 << order;
                // Split toward the target, freeing the half not containing it.
                let mut start = block;
                let mut o = order;
                while o > 0 {
                    o -= 1;
                    let half = 1u64 << o;
                    if target.0 < start + half {
                        self.insert_raw(start + half, o);
                    } else {
                        self.insert_raw(start, o);
                        start += half;
                    }
                }
                debug_assert_eq!(start, target.0);
                return true;
            }
        }
        false
    }

    /// The lowest-addressed currently-free frame satisfying `pred`, if any.
    /// Deterministic scan over all free blocks (sorted per order).
    pub fn lowest_free_matching<P: Fn(FrameNumber) -> bool>(&self, pred: P) -> Option<FrameNumber> {
        let mut best: Option<u64> = None;
        for order in 0..=MAX_ORDER {
            for &start in &self.free_lists[order as usize] {
                if let Some(b) = best {
                    if start >= b {
                        break; // sorted: no lower frame in this order's tail
                    }
                }
                let n = 1u64 << order;
                if let Some(f) = (0..n).map(|i| start + i).find(|&f| pred(FrameNumber(f))) {
                    if best.is_none_or(|b| f < b) {
                        best = Some(f);
                    }
                    break; // lowest candidate in this order found
                }
            }
        }
        best.map(FrameNumber)
    }

    /// Free a `2^order`-page block, coalescing with free buddies.
    pub fn free(&mut self, frame: FrameNumber, order: u32) {
        assert!(order <= MAX_ORDER);
        let mut start = frame.0;
        assert!(
            start.is_multiple_of(1 << order),
            "misaligned free of {frame} at order {order}"
        );
        assert!(
            start + (1 << order) <= self.frame_count,
            "free beyond memory"
        );
        let mut order = order;
        self.free_pages += 1 << order;
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            if buddy + (1 << order) <= self.frame_count
                && self.free_lists[order as usize].remove(&buddy)
            {
                start = start.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        let inserted = self.free_lists[order as usize].insert(start);
        assert!(inserted, "double free of block {start:#x} at order {order}");
    }

    /// Is `frame` currently free (contained in any free block)? O(orders ×
    /// log blocks) — cheap enough for the incremental auditor to call per
    /// frame, without walking whole lists.
    pub fn contains_frame(&self, frame: FrameNumber) -> bool {
        if frame.0 >= self.frame_count {
            return false;
        }
        (0..=MAX_ORDER).any(|o| {
            let start = frame.0 & !((1u64 << o) - 1);
            self.free_lists[o as usize].contains(&start)
        })
    }

    /// Check the structural invariants (used by property tests): no overlap,
    /// alignment, and the free-page count matches the lists.
    pub fn check_invariants(&self) {
        let mut total = 0u64;
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (o, list) in self.free_lists.iter().enumerate() {
            for &s in list {
                let size = 1u64 << o;
                assert!(s % size == 0, "block {s:#x} misaligned at order {o}");
                assert!(s + size <= self.frame_count, "block out of range");
                blocks.push((s, s + size));
                total += size;
            }
        }
        assert_eq!(total, self.free_pages, "free-page count drifted");
        blocks.sort();
        for w in blocks.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping free blocks {w:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_full_memory() {
        let b = BuddyAllocator::new(1 << 14);
        assert_eq!(b.free_pages(), 1 << 14);
        assert_eq!(b.free_blocks(MAX_ORDER), (1 << 14) >> MAX_ORDER);
        b.check_invariants();
    }

    #[test]
    fn seeds_unaligned_tail() {
        // 3000 frames: not a power of two — seeded as a mix of orders.
        let b = BuddyAllocator::new(3000);
        assert_eq!(b.free_pages(), 3000);
        b.check_invariants();
    }

    #[test]
    fn alloc_splits_and_free_coalesces() {
        let mut b = BuddyAllocator::new(1 << MAX_ORDER);
        let f = b.alloc(0).unwrap();
        assert_eq!(f, FrameNumber(0), "lowest address first");
        assert_eq!(b.free_pages(), (1 << MAX_ORDER) - 1);
        b.check_invariants();
        b.free(f, 0);
        assert_eq!(b.free_pages(), 1 << MAX_ORDER);
        // Everything coalesced back into one max-order block.
        assert_eq!(b.free_blocks(MAX_ORDER), 1);
        b.check_invariants();
    }

    #[test]
    fn alloc_order_matches_size() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc(3).unwrap();
        assert_eq!(f.0 % 8, 0, "order-3 block is 8-page aligned");
        assert_eq!(b.free_pages(), (1 << 12) - 8);
    }

    #[test]
    fn sequential_allocs_walk_addresses_upward() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f1 = b.alloc(0).unwrap();
        let f2 = b.alloc(0).unwrap();
        let f3 = b.alloc(0).unwrap();
        assert!(
            f1.0 < f2.0 && f2.0 < f3.0,
            "the uncolored baseline walks upward"
        );
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BuddyAllocator::new(4);
        assert!(b.alloc(2).is_some());
        assert!(b.alloc(0).is_none());
    }

    #[test]
    fn take_block_removes_specific() {
        let mut b = BuddyAllocator::new(1 << 12);
        let blocks: Vec<_> = b.blocks(MAX_ORDER).collect();
        assert_eq!(blocks.len(), 2);
        let second = blocks[1];
        b.take_block(MAX_ORDER, second);
        assert_eq!(b.free_blocks(MAX_ORDER), 1);
        assert_eq!(b.blocks(MAX_ORDER).next(), Some(blocks[0]));
        b.check_invariants();
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn take_block_of_allocated_panics() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f = b.alloc(MAX_ORDER).unwrap();
        b.take_block(MAX_ORDER, f);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(1 << 12);
        let f0 = b.alloc(0).unwrap();
        let _f1 = b.alloc(0).unwrap();
        // f1 stays allocated so f0 cannot coalesce away; the second free of
        // f0 is a detectable duplicate insert.
        b.free(f0, 0);
        b.free(f0, 0);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_free_panics() {
        let mut b = BuddyAllocator::new(1 << 12);
        b.free(FrameNumber(1), 3);
    }

    #[test]
    fn alloc_specific_takes_exact_frame() {
        let mut b = BuddyAllocator::new(1 << 12);
        assert!(b.alloc_specific(FrameNumber(1234)));
        assert_eq!(b.free_pages(), (1 << 12) - 1);
        b.check_invariants();
        // The frame is gone: a second specific alloc fails.
        assert!(!b.alloc_specific(FrameNumber(1234)));
        // Freeing restores full coalescing.
        b.free(FrameNumber(1234), 0);
        assert_eq!(b.free_blocks(MAX_ORDER), 2);
        b.check_invariants();
    }

    #[test]
    fn alloc_specific_out_of_range_fails() {
        let mut b = BuddyAllocator::new(16);
        assert!(!b.alloc_specific(FrameNumber(16)));
    }

    #[test]
    fn lowest_free_matching_scans_ascending() {
        let mut b = BuddyAllocator::new(1 << 12);
        // Predicate: frames ≡ 3 (mod 8).
        let pred = |f: FrameNumber| f.0 % 8 == 3;
        assert_eq!(b.lowest_free_matching(pred), Some(FrameNumber(3)));
        assert!(b.alloc_specific(FrameNumber(3)));
        assert_eq!(b.lowest_free_matching(pred), Some(FrameNumber(11)));
    }

    #[test]
    fn lowest_free_matching_none_when_no_match() {
        let b = BuddyAllocator::new(16);
        assert_eq!(b.lowest_free_matching(|f| f.0 > 100), None);
    }

    #[test]
    fn sequential_specific_allocs_are_contiguous() {
        // The NUMA-aware first-touch pattern: repeatedly take the lowest
        // matching frame — a burst receives a contiguous run.
        let mut b = BuddyAllocator::new(1 << 12);
        let mut got = Vec::new();
        for _ in 0..8 {
            let f = b.lowest_free_matching(|_| true).unwrap();
            assert!(b.alloc_specific(f));
            got.push(f.0);
        }
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        b.check_invariants();
    }

    #[test]
    fn free_in_any_order_coalesces_fully() {
        let mut b = BuddyAllocator::new(64);
        let frames: Vec<_> = (0..64).map(|_| b.alloc(0).unwrap()).collect();
        assert_eq!(b.free_pages(), 0);
        // Free even frames first, then odd — exercises deferred coalescing.
        for f in frames.iter().filter(|f| f.0 % 2 == 0) {
            b.free(*f, 0);
        }
        b.check_invariants();
        for f in frames.iter().filter(|f| f.0 % 2 == 1) {
            b.free(*f, 0);
        }
        assert_eq!(b.free_pages(), 64);
        assert_eq!(
            b.free_blocks(6.min(MAX_ORDER)),
            if MAX_ORDER >= 6 { 1 } else { 0 }
        );
        b.check_invariants();
    }
}
