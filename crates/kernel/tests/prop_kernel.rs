//! Property tests for the simulated kernel: buddy structure, color-list
//! consistency, and allocation correctness under random operation sequences.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_hw::addrmap::AddressMapping;
use tint_hw::rng::SplitMix64;
use tint_hw::topology::Topology;
use tint_hw::types::{BankColor, CoreId, FrameNumber, LlcColor, PAGE_SIZE};
use tint_kernel::kernel::{COLOR_ALLOC, SET_LLC_COLOR, SET_MEM_COLOR};
use tint_kernel::{BuddyAllocator, Errno, HeapPolicy, Kernel, KernelCosts, MAX_ORDER};

const CASES: u64 = 60;

/// Random alloc/free traffic keeps every buddy invariant.
#[derive(Debug, Clone)]
enum BuddyOp {
    Alloc(u32),
    FreeNth(usize),
    AllocSpecific(u64),
}

fn arb_buddy_ops(rng: &mut SplitMix64) -> Vec<BuddyOp> {
    let n = rng.gen_range_in(1, 120);
    (0..n)
        .map(|_| match rng.gen_range(3) {
            0 => BuddyOp::Alloc(rng.gen_range(5) as u32),
            1 => BuddyOp::FreeNth(rng.next_u64() as usize),
            _ => BuddyOp::AllocSpecific(rng.gen_range(512)),
        })
        .collect()
}

#[test]
fn buddy_invariants_under_random_traffic() {
    let mut rng = SplitMix64::new(0xb0dd);
    for _ in 0..CASES {
        let ops = arb_buddy_ops(&mut rng);
        let mut b = BuddyAllocator::new(512);
        let mut live: Vec<(FrameNumber, u32)> = Vec::new();
        let mut live_pages = 0u64;
        for op in ops {
            match op {
                BuddyOp::Alloc(order) => {
                    if let Some(f) = b.alloc(order) {
                        live.push((f, order));
                        live_pages += 1 << order;
                    }
                }
                BuddyOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (f, order) = live.remove(n % live.len());
                        b.free(f, order);
                        live_pages -= 1 << order;
                    }
                }
                BuddyOp::AllocSpecific(f) => {
                    let f = FrameNumber(f);
                    if b.alloc_specific(f) {
                        live.push((f, 0));
                        live_pages += 1;
                    }
                }
            }
            b.check_invariants();
            assert_eq!(b.free_pages() + live_pages, 512, "pages conserved");
        }
        // Freeing everything coalesces back to the initial state.
        for (f, order) in live.drain(..) {
            b.free(f, order);
        }
        b.check_invariants();
        assert_eq!(b.free_pages(), 512);
        assert_eq!(b.free_blocks(9.min(MAX_ORDER)), 1, "fully coalesced");
    }
}

/// No two live allocations overlap.
#[test]
fn buddy_allocations_never_overlap() {
    let mut rng = SplitMix64::new(0x0e1a);
    for _ in 0..CASES {
        let ops = arb_buddy_ops(&mut rng);
        let mut b = BuddyAllocator::new(512);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                BuddyOp::Alloc(order) => {
                    if let Some(f) = b.alloc(order) {
                        live.push((f.0, f.0 + (1 << order)));
                    }
                }
                BuddyOp::AllocSpecific(f) => {
                    if b.alloc_specific(FrameNumber(f)) {
                        live.push((f, f + 1));
                    }
                }
                BuddyOp::FreeNth(_) => {} // keep everything live for overlap check
            }
        }
        let mut sorted = live.clone();
        sorted.sort();
        for w in sorted.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// Every page a colored task faults matches one of its colors, no page
/// is handed out twice, and ENOMEM only happens when the color is
/// genuinely exhausted.
#[test]
fn colored_pages_always_match_task_colors() {
    let mut rng = SplitMix64::new(0xc0105);
    for _ in 0..CASES {
        let bank = rng.gen_range(4) as u16;
        let llc = rng.gen_range(4) as u16;
        let pages = rng.gen_range_in(1, 80);
        let seed_noise = rng.gen_range(64);
        let mut k = Kernel::new(
            AddressMapping::tiny(),
            Topology::new(2, 1, 2),
            KernelCosts::default(),
        );
        k.consume_boot_noise(seed_noise);
        let t = k.create_task(CoreId(0));
        k.sys_mmap(t, SET_MEM_COLOR | bank as u64, 0, COLOR_ALLOC)
            .unwrap();
        k.sys_mmap(t, SET_LLC_COLOR | llc as u64, 0, COLOR_ALLOC)
            .unwrap();
        let base = k.sys_mmap(t, 0, pages * PAGE_SIZE, 0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in 0..pages {
            let tr = k.translate(t, base.offset(p * PAGE_SIZE)).unwrap();
            let d = k.mapping().decode_frame(tr.phys.frame());
            assert_eq!(d.bank_color, BankColor(bank));
            assert_eq!(d.llc_color, LlcColor(llc));
            assert!(seen.insert(tr.phys.frame()), "frame handed out twice");
        }
        k.color_lists().check_invariants();
        k.buddy().check_invariants();
    }
}

/// Translation is stable: once faulted, a page keeps its frame.
#[test]
fn translation_is_stable() {
    let mut rng = SplitMix64::new(0x57ab1e);
    for _ in 0..CASES {
        let pages = rng.gen_range_in(1, 40);
        let probes = rng.gen_range_in(1, 30) as usize;
        let mut k = Kernel::new(
            AddressMapping::tiny(),
            Topology::new(2, 1, 2),
            KernelCosts::default(),
        );
        let t = k.create_task(CoreId(1));
        k.set_policy(t, HeapPolicy::FirstTouch).unwrap();
        let base = k.sys_mmap(t, 0, pages * PAGE_SIZE, 0).unwrap();
        let first: Vec<_> = (0..pages)
            .map(|p| k.translate(t, base.offset(p * PAGE_SIZE)).unwrap().phys)
            .collect();
        for i in 0..probes {
            let p = (i as u64 * 7) % pages;
            let tr = k.translate(t, base.offset(p * PAGE_SIZE)).unwrap();
            assert_eq!(tr.phys, first[p as usize]);
            assert_eq!(tr.fault_cycles, 0, "no re-fault");
        }
    }
}

/// munmap then re-malloc recycles memory without leaking pages.
#[test]
fn alloc_free_cycles_conserve_pages() {
    let mut rng = SplitMix64::new(0xa110c);
    for _ in 0..CASES {
        let rounds = rng.gen_range_in(1, 8) as usize;
        let pages = rng.gen_range_in(1, 32);
        let mut k = Kernel::new(
            AddressMapping::tiny(),
            Topology::new(2, 1, 2),
            KernelCosts::default(),
        );
        let t = k.create_task(CoreId(0));
        k.sys_mmap(t, SET_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
        let total = k.buddy().free_pages() + k.color_lists().pages();
        for _ in 0..rounds {
            let base = k.sys_mmap(t, 0, pages * PAGE_SIZE, 0).unwrap();
            for p in 0..pages {
                k.translate(t, base.offset(p * PAGE_SIZE)).unwrap();
            }
            k.sys_munmap(t, base, pages * PAGE_SIZE).unwrap();
            assert_eq!(
                k.buddy().free_pages() + k.color_lists().pages(),
                total,
                "pages conserved across alloc/free cycles"
            );
        }
    }
}

/// The mmap color protocol rejects malformed arguments without state
/// changes.
#[test]
fn malformed_color_ops_are_rejected() {
    let mut rng = SplitMix64::new(0xba0);
    for _ in 0..CASES {
        let mode = rng.gen_range_in(5, 16);
        let color = rng.gen_range(1000);
        let mut k = Kernel::new(
            AddressMapping::tiny(),
            Topology::new(2, 1, 2),
            KernelCosts::default(),
        );
        let t = k.create_task(CoreId(0));
        let r = k.sys_mmap(t, (mode << 60) | color, 0, COLOR_ALLOC);
        assert_eq!(r, Err(Errno::Einval));
        assert!(!k.task(t).unwrap().coloring_active());
    }
}
