//! # tint-mem — the composed memory system
//!
//! Glues the cache hierarchy ([`tint_cache`]), the NUMA interconnect, and
//! the DRAM simulator ([`tint_dram`]) into a single entry point:
//!
//! ```text
//! MemorySystem::access(core, phys_addr, rw, now) -> AccessResult
//! ```
//!
//! An access walks L1 → L2 → L3; on an LLC miss it crosses the interconnect
//! to the *home node* of the physical address (0, 1 or 2 extra hops — paper
//! Fig. 1) and is served by that node's memory controller. The result carries
//! a full latency breakdown (hierarchy / interconnect / DRAM) and per-core
//! local-vs-remote counters, which is exactly the instrumentation the paper's
//! narrative claims (1)–(2) need.

//! ```
//! use tint_hw::machine::MachineConfig;
//! use tint_hw::types::{BankColor, CoreId, LlcColor, Rw};
//! use tint_mem::MemorySystem;
//!
//! let m = MachineConfig::opteron_6128();
//! let mut mem = MemorySystem::new(m.clone());
//! let local = m.mapping.compose_frame(BankColor(0), LlcColor(0), 1).base();
//! let remote = m.mapping.compose_frame(BankColor(96), LlcColor(0), 1).base();
//! let r0 = mem.access(CoreId(0), local, Rw::Read, 0);
//! let r2 = mem.access(CoreId(0), remote, Rw::Read, 100_000);
//! assert!(r2.latency > r0.latency); // cross-socket hop penalty
//! assert_eq!(r2.hops, 2);
//! ```

pub mod stats;
pub mod system;

pub use stats::{CoreMemStats, MemStats};
pub use system::{AccessResult, MemorySystem};
