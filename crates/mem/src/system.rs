//! The composed memory system and the interconnect model.

use crate::stats::MemStats;
use tint_cache::{CacheHierarchy, HitLevel};
use tint_dram::{DramAccess, DramSystem};
use tint_hw::decoder::FrameDecoder;
use tint_hw::machine::MachineConfig;
use tint_hw::profile::{self, Component};
use tint_hw::types::{CoreId, NodeId, PhysAddr, Rw};

/// Outcome of one memory access with its latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// End-to-end cycles from issue to data return.
    pub latency: u64,
    /// Where the access was resolved.
    pub level: HitLevel,
    /// Extra interconnect hops taken (0 = local node).
    pub hops: u32,
    /// Home node of the address (meaningful when `level == Memory`).
    pub home_node: NodeId,
    /// DRAM detail when the access reached memory.
    pub dram: Option<DramAccess>,
}

/// Caches + interconnect + DRAM behind one `access` call.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MachineConfig,
    /// Precomputed home-node decode for the access inner loop.
    decoder: FrameDecoder,
    hierarchy: CacheHierarchy,
    dram: DramSystem,
    /// Per-node HT port availability: remote requests into a node serialize
    /// briefly on its link, modeling interconnect contention (§II.B).
    link_free_at: Vec<u64>,
    stats: MemStats,
}

impl MemorySystem {
    /// Build the memory system for a machine.
    pub fn new(config: MachineConfig) -> Self {
        config.validate();
        let hierarchy = CacheHierarchy::new(&config);
        let dram = DramSystem::new(config.mapping, config.dram);
        let nodes = config.topology.node_count();
        let cores = config.topology.core_count();
        Self {
            decoder: FrameDecoder::new(&config.mapping),
            config,
            hierarchy,
            dram,
            link_free_at: vec![0; nodes],
            stats: MemStats::new(cores),
        }
    }

    /// The machine this system simulates.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Serve one access from `core` to physical address `addr` at cycle
    /// `now`; returns the latency breakdown. Loads and stores share timing
    /// (see DESIGN.md).
    pub fn access(&mut self, core: CoreId, addr: PhysAddr, rw: Rw, now: u64) -> AccessResult {
        let th = profile::start();
        let (level, hier_cycles) = self.hierarchy.access(core, addr);
        profile::stop(Component::Hierarchy, th);
        let td = profile::start();
        let home_node = self.decoder.node_of_frame(addr.frame());
        profile::stop(Component::Decode, td);

        let result = if level == HitLevel::Memory {
            let hops = self.config.topology.hops(core, home_node);
            let hop_extra = self.config.interconnect.hop_extra(hops);
            // Outbound: remote requests serialize on the home node's link
            // (the stats' interconnect share is derived by subtraction).
            let mut arrive = now + hier_cycles + hop_extra / 2;
            if hops > 0 {
                let port = &mut self.link_free_at[home_node.index()];
                let start = arrive.max(*port);
                *port = start + self.config.interconnect.link_busy;
                arrive = start;
            }
            let tdr = profile::start();
            let dram = self.dram.access(addr, rw, arrive);
            profile::stop(Component::Dram, tdr);
            // Return trip: the other half of the hop penalty.
            let done = dram.complete_at + (hop_extra - hop_extra / 2);
            AccessResult {
                latency: done - now,
                level,
                hops,
                home_node,
                dram: Some(dram),
            }
        } else {
            AccessResult {
                latency: hier_cycles,
                level,
                hops: 0,
                home_node,
                dram: None,
            }
        };

        // Book-keeping.
        let st = &mut self.stats.cores[core.index()];
        st.accesses += 1;
        st.total_latency += result.latency;
        st.hierarchy_cycles += hier_cycles;
        match result.dram {
            None => st.cache_resolved += 1,
            Some(d) => {
                match result.hops {
                    0 => st.dram_local += 1,
                    1 => st.dram_same_socket += 1,
                    _ => st.dram_cross_socket += 1,
                }
                st.dram_cycles += d.latency;
                st.interconnect_cycles += result.latency - hier_cycles - d.latency;
            }
        }
        result
    }

    /// Warming access for the sampled engine: identical timing and state to
    /// [`Self::access`] — cache walk, link serialization, DRAM bank
    /// machinery all run for real, so detailed windows later sample from
    /// contention state (row buffers, link ports) the warm-up phase kept
    /// live — but skips the [`MemStats`] bookkeeping, the profile probes,
    /// and the home-node decode for cache hits (where it is unused).
    /// Metrics derived from `MemStats` come from detailed windows only;
    /// latency fidelity costs nothing to keep.
    pub fn access_warm(&mut self, core: CoreId, addr: PhysAddr, rw: Rw, now: u64) -> AccessResult {
        let (level, hier_cycles) = self.hierarchy.access(core, addr);
        if level == HitLevel::Memory {
            let home_node = self.decoder.node_of_frame(addr.frame());
            let hops = self.config.topology.hops(core, home_node);
            let hop_extra = self.config.interconnect.hop_extra(hops);
            let mut arrive = now + hier_cycles + hop_extra / 2;
            if hops > 0 {
                let port = &mut self.link_free_at[home_node.index()];
                let start = arrive.max(*port);
                *port = start + self.config.interconnect.link_busy;
                arrive = start;
            }
            let dram = self.dram.access(addr, rw, arrive);
            let done = dram.complete_at + (hop_extra - hop_extra / 2);
            AccessResult {
                latency: done - now,
                level,
                hops,
                home_node,
                dram: Some(dram),
            }
        } else {
            // Cache hits never leave the socket: skip the home-node decode
            // (it is pure, so this cannot perturb state) and report node 0,
            // matching the "meaningful when `level == Memory`" contract.
            AccessResult {
                latency: hier_cycles,
                level,
                hops: 0,
                home_node: NodeId(0),
                dram: None,
            }
        }
    }

    /// Accumulated per-core counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The cache hierarchy (for cache-level stats).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// The DRAM system (for bank-level stats).
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// Zero every counter in the stack (contents/timing state preserved).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::new(self.config.topology.core_count());
        self.hierarchy.reset_stats();
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::types::{BankColor, LlcColor};

    fn sys() -> MemorySystem {
        MemorySystem::new(MachineConfig::opteron_6128())
    }

    fn frame(s: &MemorySystem, bc: u16, llc: u16, row: u64) -> tint_hw::types::FrameNumber {
        s.config()
            .mapping
            .compose_frame(BankColor(bc), LlcColor(llc), row)
    }

    #[test]
    fn local_dram_access_has_no_hop_penalty() {
        let mut s = sys();
        // Core 0 is on node 0; bank color 0 is node 0.
        let a = frame(&s, 0, 0, 0).base();
        let r = s.access(CoreId(0), a, Rw::Read, 0);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.hops, 0);
        assert_eq!(r.home_node, NodeId(0));
    }

    #[test]
    fn remote_latency_exceeds_local_exceeds_cache() {
        // Paper claim (1): local controller latency ≪ remote.
        let mut s = sys();
        let local = frame(&s, 0, 0, 0).base(); // node 0
        let same_socket = frame(&s, 32, 0, 0).base(); // node 1
        let cross_socket = frame(&s, 96, 0, 0).base(); // node 3
        let r_local = s.access(CoreId(0), local, Rw::Read, 0);
        let r_1hop = s.access(CoreId(0), same_socket, Rw::Read, 100_000);
        let r_2hop = s.access(CoreId(0), cross_socket, Rw::Read, 200_000);
        assert!(r_1hop.latency > r_local.latency);
        assert!(r_2hop.latency > r_1hop.latency);
        // And a repeat access is a cache hit far below all of them.
        // A repeat access is resolved in the caches, far below all of them
        // (the three same-set fills above may have demoted it from L1 to L2).
        let r_hit = s.access(CoreId(0), local, Rw::Read, 300_000);
        assert!(
            r_hit.dram.is_none(),
            "expected a cache hit, got {:?}",
            r_hit.level
        );
        assert!(r_hit.latency < r_local.latency / 5);
    }

    #[test]
    fn hop_penalty_matches_config() {
        let mut s = sys();
        let local = frame(&s, 0, 0, 0).base();
        let remote = frame(&s, 96, 0, 1).base(); // cross socket, same row shape
        let r0 = s.access(CoreId(0), local, Rw::Read, 0);
        let r2 = s.access(CoreId(0), remote, Rw::Read, 100_000);
        assert_eq!(
            r2.latency - r0.latency,
            s.config().interconnect.cross_socket_extra,
            "difference must be exactly the hop penalty on an unloaded machine"
        );
    }

    #[test]
    fn remote_link_contention_serializes() {
        let mut s = sys();
        // Two cores on socket 0 both hammer node 3 simultaneously.
        let a = frame(&s, 96, 0, 0).base();
        let b = frame(&s, 97, 0, 0).base(); // different bank, same node
        let r1 = s.access(CoreId(0), a, Rw::Read, 0);
        let r2 = s.access(CoreId(1), b, Rw::Read, 0);
        // Different banks, so without a link model both would be equal except
        // controller overhead; link_busy adds serialization on the HT port.
        assert!(
            r2.latency >= r1.latency,
            "second remote access waits on the link/controller"
        );
    }

    #[test]
    fn stats_classify_locality() {
        let mut s = sys();
        let local = frame(&s, 0, 0, 0).base();
        let one_hop = frame(&s, 32, 0, 0).base();
        let two_hop = frame(&s, 96, 0, 0).base();
        s.access(CoreId(0), local, Rw::Read, 0);
        s.access(CoreId(0), one_hop, Rw::Read, 10_000);
        s.access(CoreId(0), two_hop, Rw::Read, 20_000);
        let st = s.stats().core(CoreId(0));
        assert_eq!(st.dram_local, 1);
        assert_eq!(st.dram_same_socket, 1);
        assert_eq!(st.dram_cross_socket, 1);
        assert!((st.remote_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_counts_as_cache_resolved() {
        let mut s = sys();
        let a = frame(&s, 0, 0, 0).base();
        s.access(CoreId(0), a, Rw::Read, 0);
        s.access(CoreId(0), a, Rw::Read, 1000);
        let st = s.stats().core(CoreId(0));
        assert_eq!(st.accesses, 2);
        assert_eq!(st.cache_resolved, 1);
        assert_eq!(st.dram_total(), 1);
    }

    #[test]
    fn latency_breakdown_sums() {
        let mut s = sys();
        let a = frame(&s, 96, 3, 7).base();
        let r = s.access(CoreId(0), a, Rw::Write, 0);
        let st = s.stats().core(CoreId(0));
        assert_eq!(
            st.hierarchy_cycles + st.interconnect_cycles + st.dram_cycles,
            r.latency,
            "breakdown must sum to end-to-end latency"
        );
    }

    #[test]
    fn reset_stats_clears_everything() {
        let mut s = sys();
        s.access(CoreId(0), frame(&s, 0, 0, 0).base(), Rw::Read, 0);
        s.reset_stats();
        assert_eq!(s.stats().core(CoreId(0)).accesses, 0);
        assert_eq!(s.dram().stats().requests, 0);
        assert_eq!(s.hierarchy().stats().core(CoreId(0)).accesses(), 0);
    }
}
