//! Per-core memory-system counters: locality, latency, breakdown.

use tint_hw::types::CoreId;

/// Counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    /// Total accesses issued.
    pub accesses: u64,
    /// Accesses resolved in the cache hierarchy (no DRAM).
    pub cache_resolved: u64,
    /// DRAM accesses served by the core's local node.
    pub dram_local: u64,
    /// DRAM accesses served by the other node on the same socket (1 hop).
    pub dram_same_socket: u64,
    /// DRAM accesses served across sockets (2 hops).
    pub dram_cross_socket: u64,
    /// Sum of end-to-end latencies.
    pub total_latency: u64,
    /// Latency spent in the cache-lookup chain.
    pub hierarchy_cycles: u64,
    /// Latency spent on the interconnect (hop + link wait).
    pub interconnect_cycles: u64,
    /// Latency spent in DRAM (queueing + device + bus).
    pub dram_cycles: u64,
}

impl CoreMemStats {
    /// DRAM accesses of any locality.
    pub fn dram_total(&self) -> u64 {
        self.dram_local + self.dram_same_socket + self.dram_cross_socket
    }

    /// Fraction of DRAM accesses that were remote; `0` when no DRAM traffic.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.dram_total();
        if total == 0 {
            0.0
        } else {
            (self.dram_same_socket + self.dram_cross_socket) as f64 / total as f64
        }
    }

    /// Mean end-to-end access latency; `0` when idle.
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }
}

/// Machine-wide memory-system counters.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// One entry per core.
    pub cores: Vec<CoreMemStats>,
}

impl MemStats {
    /// Zeroed stats for `n` cores.
    pub fn new(n: usize) -> Self {
        Self {
            cores: vec![CoreMemStats::default(); n],
        }
    }

    /// Stats for one core.
    pub fn core(&self, c: CoreId) -> &CoreMemStats {
        &self.cores[c.index()]
    }

    /// Machine-wide remote DRAM fraction.
    pub fn remote_fraction(&self) -> f64 {
        let (remote, total) = self.cores.iter().fold((0u64, 0u64), |(r, t), c| {
            (
                r + c.dram_same_socket + c.dram_cross_socket,
                t + c.dram_total(),
            )
        });
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let s = CoreMemStats {
            dram_local: 6,
            dram_same_socket: 3,
            dram_cross_socket: 1,
            ..Default::default()
        };
        assert_eq!(s.dram_total(), 10);
        assert!((s.remote_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(CoreMemStats::default().remote_fraction(), 0.0);
    }

    #[test]
    fn mean_latency() {
        let s = CoreMemStats {
            accesses: 4,
            total_latency: 100,
            ..Default::default()
        };
        assert_eq!(s.mean_latency(), 25.0);
    }

    #[test]
    fn machine_wide_fraction() {
        let mut m = MemStats::new(2);
        m.cores[0].dram_local = 1;
        m.cores[1].dram_cross_socket = 1;
        assert_eq!(m.remote_fraction(), 0.5);
    }
}
